"""The mobile collector agent: filter at the source, carry only what matters.

This is the paper's core bandwidth argument made concrete (section 1):
"Data may be accessed only by an agent executing at the same site as the
data resides.  An agent typically will filter or otherwise reduce the data
it reads, carrying with it only the relevant information as it roams the
network."

The collector visits every sensor site in its itinerary, reads the raw
readings from the site-local weather cabinet, keeps only the storm
precursors, and finally delivers the (small) evidence set to the expert
system at the hub.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.stormcast.prediction import EXPERT_AGENT_NAME
from repro.apps.stormcast.sensors import READINGS_FOLDER, SENSOR_CABINET, WeatherReading
from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.kernel import Kernel
from repro.core.registry import register_behaviour

__all__ = ["collector_behaviour", "COLLECTOR_NAME", "STORMCAST_CABINET",
           "launch_collector"]

#: registered name of the collector behaviour (needed so it can jump)
COLLECTOR_NAME = "storm_collector"
#: hub-side cabinet where collection summaries are recorded
STORMCAST_CABINET = "stormcast"


def collector_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Visit sensor sites, filter locally, deliver evidence to the hub expert."""
    hub = briefcase.get("HUB")
    wind_threshold = float(briefcase.get("WIND_THRESHOLD", 20.0))
    pressure_threshold = float(briefcase.get("PRESSURE_THRESHOLD", 985.0))
    observations = briefcase.folder("OBSERVATIONS", create=True)

    if ctx.site_name != hub or briefcase.get("PHASE") != "deliver":
        # Sensor-site visit: filter the local raw readings in place.
        cabinet = ctx.cabinet(SENSOR_CABINET)
        raw = cabinet.elements(READINGS_FOLDER)
        kept = 0
        for record in raw:
            try:
                reading = WeatherReading.from_wire(record)
            except (KeyError, TypeError, ValueError):
                continue
            if reading.is_storm_precursor(wind_threshold, pressure_threshold):
                # Strip the bulky raw padding before carrying it along: the
                # evidence the expert needs is just the measured values.
                slim = WeatherReading(
                    station=reading.station, timestamp=reading.timestamp,
                    wind_speed=reading.wind_speed, pressure=reading.pressure,
                    temperature=reading.temperature, humidity=reading.humidity,
                    raw_payload_bytes=0,
                )
                observations.push(slim.to_wire())
                kept += 1
        briefcase.folder("VISIT_LOG", create=True).push(
            {"site": ctx.site_name, "raw": len(raw), "kept": kept, "at": ctx.now})
        yield ctx.sleep(float(briefcase.get("FILTER_SECONDS", 0.005)))

    # Move on to the next reachable sensor site.  A refused transfer means
    # the site is down or unreachable right now — StormCast keeps going with
    # the remaining stations rather than losing the whole collection run.
    itinerary = briefcase.folder("SENSOR_SITES", create=True)
    while itinerary:
        next_site = itinerary.dequeue()
        result = yield ctx.jump(briefcase.copy(), next_site)
        if result is not None and result.value:
            return "moved"
        briefcase.folder("VISIT_LOG", create=True).push(
            {"site": next_site, "raw": 0, "kept": 0, "at": ctx.now, "skipped": True})

    if ctx.site_name != hub:
        briefcase.set("PHASE", "deliver")
        yield ctx.jump(briefcase, hub)
        return "moving-to-hub"

    # At the hub: hand the evidence to the expert system.
    result = yield ctx.meet(EXPERT_AGENT_NAME, briefcase)
    summary = {
        "observations": len(observations),
        "visits": briefcase.folder("VISIT_LOG", create=True).elements(),
        "predictions": result.value if result is not None else 0,
        "alerts": briefcase.get("ALERT_COUNT", 0),
        "completed_at": ctx.now,
    }
    ctx.cabinet(STORMCAST_CABINET).put("collections", summary)
    yield ctx.sleep(0)
    return summary


register_behaviour(COLLECTOR_NAME, collector_behaviour, replace=True)


def launch_collector(kernel: Kernel, hub: str, sensor_sites: Sequence[str],
                     wind_threshold: float = 20.0, pressure_threshold: float = 985.0,
                     origin: Optional[str] = None, delay: float = 0.0) -> str:
    """Launch a collector from *origin* (the hub by default); returns its agent id."""
    briefcase = Briefcase()
    briefcase.set("HUB", hub)
    briefcase.set("WIND_THRESHOLD", wind_threshold)
    briefcase.set("PRESSURE_THRESHOLD", pressure_threshold)
    itinerary = briefcase.folder("SENSOR_SITES", create=True)
    for site in sensor_sites:
        itinerary.enqueue(site)
    return kernel.launch(origin or hub, COLLECTOR_NAME, briefcase, delay=delay)


def launch_collectors(kernel: Kernel, hub: str, sensor_sites: Sequence[str],
                      n_collectors: int = 1, wind_threshold: float = 20.0,
                      pressure_threshold: float = 985.0, delay: float = 0.0) -> list:
    """Partition the sensor sites across *n_collectors* parallel collectors.

    One itinerant collector per partition shortens the time to forecast (the
    itineraries run concurrently) at the cost of one extra hub delivery per
    collector.  The partition is round-robin so heterogeneous site counts
    stay balanced.  Returns the launched agent ids.
    """
    if n_collectors < 1:
        raise ValueError("n_collectors must be at least 1")
    sites = list(sensor_sites)
    n_collectors = min(n_collectors, max(1, len(sites)))
    partitions = [sites[index::n_collectors] for index in range(n_collectors)]
    return [
        launch_collector(kernel, hub, partition, wind_threshold=wind_threshold,
                         pressure_threshold=pressure_threshold, delay=delay)
        for partition in partitions if partition
    ]
