"""StormCast workload driver: one call per pipeline, matched parameters.

Experiments E1 and E8 both need "run StormCast with the mobile collector"
and "run StormCast client-server" under identical sensor data, topology and
transport, and then compare bytes on the wire, time to prediction, and the
predictions themselves.  This module packages that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.stormcast.baseline import (BASELINE_CABINET, install_baseline_agents,
                                           launch_baseline_client)
from repro.apps.stormcast.collector import STORMCAST_CABINET, launch_collectors
from repro.apps.stormcast.prediction import (EXPERT_AGENT_NAME, PREDICTIONS_CABINET,
                                             StormExpert, make_expert_behaviour)
from repro.apps.stormcast.sensors import (SENSOR_CABINET, WeatherGenerator,
                                          populate_sensor_sites)
from repro.core.kernel import Kernel, KernelConfig
from repro.net.failures import FailureSchedule
from repro.net.topology import Topology, star

__all__ = ["StormCastParams", "StormCastResult", "build_stormcast_kernel",
           "run_agent_pipeline", "run_client_server"]


@dataclass
class StormCastParams:
    """Everything that defines one StormCast run."""

    n_sensors: int = 8
    samples_per_site: int = 200
    storm_rate: float = 0.02
    raw_payload_bytes: int = 512
    wind_threshold: float = 20.0
    pressure_threshold: float = 985.0
    transport: str = "tcp"
    seed: int = 7
    hub_name: str = "hub"
    #: WAN-ish links between hub and sensors make the bandwidth story visible
    link_latency: float = 0.02
    link_bandwidth: float = 250_000.0
    #: optional failure schedule applied to the run (E8 failure variant)
    failures: Optional[FailureSchedule] = None
    run_until: float = 300.0
    #: lifecycle-ledger retention: the pipeline is a long-running workload
    #: (collectors, couriers and expert meets churn constantly) and reads
    #: its outputs from cabinets / ``result_of`` only, so terminal agents
    #: are archived into compact records by default
    retention: str = "keep-results"
    #: durability policy of the per-site stores; with anything other than
    #: "none" the sensor readings and the hub's collection/prediction
    #: cabinets ride the durable store (see :mod:`repro.store`)
    durability: str = "none"

    def sensor_names(self) -> List[str]:
        """The sensor site names for this parameter set."""
        return [f"sensor{i:02d}" for i in range(self.n_sensors)]


@dataclass
class StormCastResult:
    """What one pipeline run produced and what it cost."""

    mode: str
    bytes_on_wire: int
    messages: int
    migrations: int
    duration: float
    predictions: List[dict] = field(default_factory=list)
    alerts: int = 0
    observations_carried: int = 0
    raw_records_total: int = 0
    sites_covered: int = 0

    def alert_stations(self) -> List[str]:
        """Stations with a warning or severe prediction (the comparable output)."""
        return sorted(prediction["station"] for prediction in self.predictions
                      if prediction["warning_level"] in ("warning", "severe"))


def build_stormcast_kernel(params: StormCastParams) -> Kernel:
    """A hub-and-spoke kernel with populated sensor cabinets and the hub expert."""
    sensors = params.sensor_names()
    topology: Topology = star(params.hub_name, sensors, latency=params.link_latency,
                              bandwidth=params.link_bandwidth)
    kernel = Kernel(topology, transport=params.transport,
                    config=KernelConfig(rng_seed=params.seed,
                                        durability=params.durability),
                    retention=params.retention)
    # The measurement record is what a weather service must not lose: the
    # collections/predictions at the hub opt into the durable store
    # (no-ops under policy "none").
    kernel.make_durable(STORMCAST_CABINET, sites=[params.hub_name])
    kernel.make_durable(PREDICTIONS_CABINET, sites=[params.hub_name])
    generator = WeatherGenerator(seed=params.seed, storm_rate=params.storm_rate,
                                 raw_payload_bytes=params.raw_payload_bytes)
    populate_sensor_sites(kernel, sensors, params.samples_per_site, generator)
    # Sensor readings opt in *after* population: the pre-loaded readings
    # model data already on disk, so they become the cabinet's durable base
    # image (opting in first would leave an empty image, and the direct
    # Folder pushes in populate_sensor_site never reach the journal).
    kernel.make_durable(SENSOR_CABINET, sites=sensors)
    kernel.install_agent(params.hub_name, EXPERT_AGENT_NAME,
                         make_expert_behaviour(StormExpert()), replace=True)
    if params.failures is not None:
        params.failures.install(kernel)
    return kernel


def _predictions_at_hub(kernel: Kernel, hub: str) -> List[dict]:
    return [record for record in
            kernel.site(hub).cabinet(PREDICTIONS_CABINET).elements("issued")
            if isinstance(record, dict)]


def run_agent_pipeline(params: StormCastParams, n_collectors: int = 1) -> StormCastResult:
    """Run StormCast with the mobile filtering collector(s).

    With ``n_collectors > 1`` the sensor sites are partitioned and visited
    by parallel collectors (the E8c ablation); the forecast is complete when
    the *last* collector has delivered its evidence to the hub expert.
    """
    kernel = build_stormcast_kernel(params)
    launch_collectors(kernel, params.hub_name, params.sensor_names(),
                      n_collectors=n_collectors,
                      wind_threshold=params.wind_threshold,
                      pressure_threshold=params.pressure_threshold)
    kernel.run(until=params.run_until)

    summaries = [entry for entry in
                 kernel.site(params.hub_name).cabinet(STORMCAST_CABINET).elements("collections")
                 if isinstance(entry, dict)]
    visits = [visit for summary in summaries for visit in summary.get("visits", [])
              if isinstance(visit, dict)]
    return StormCastResult(
        mode="mobile-agent" if n_collectors == 1 else f"mobile-agent x{n_collectors}",
        bytes_on_wire=kernel.stats.bytes_sent,
        messages=kernel.stats.messages_sent,
        migrations=kernel.stats.migrations,
        duration=max((summary.get("completed_at", 0.0) for summary in summaries),
                     default=kernel.now),
        predictions=_predictions_at_hub(kernel, params.hub_name),
        alerts=sum(summary.get("alerts", 0) for summary in summaries),
        observations_carried=sum(summary.get("observations", 0) for summary in summaries),
        raw_records_total=sum(visit.get("raw", 0) for visit in visits),
        sites_covered=sum(1 for visit in visits
                          if visit.get("site") != params.hub_name
                          and not visit.get("skipped")),
    )


def run_client_server(params: StormCastParams) -> StormCastResult:
    """Run StormCast by shipping raw data to the hub (the baseline)."""
    kernel = build_stormcast_kernel(params)
    sensors = params.sensor_names()
    install_baseline_agents(kernel, params.hub_name, sensors)
    launch_baseline_client(kernel, params.hub_name, sensors)
    kernel.run(until=params.run_until)

    cabinet = kernel.site(params.hub_name).cabinet(BASELINE_CABINET)
    summaries = cabinet.elements("summary")
    summary = summaries[-1] if summaries else {}
    return StormCastResult(
        mode="client-server",
        bytes_on_wire=kernel.stats.bytes_sent,
        messages=kernel.stats.messages_sent,
        migrations=kernel.stats.migrations,
        duration=summary.get("completed_at", kernel.now) if isinstance(summary, dict)
        else kernel.now,
        predictions=_predictions_at_hub(kernel, params.hub_name),
        alerts=summary.get("alerts", 0) if isinstance(summary, dict) else 0,
        observations_carried=summary.get("raw_records_received", 0)
        if isinstance(summary, dict) else 0,
        raw_records_total=summary.get("raw_records_received", 0)
        if isinstance(summary, dict) else 0,
        sites_covered=summary.get("sites_responded", 0) if isinstance(summary, dict) else 0,
    )
