"""The client-server StormCast baseline: ship raw data to the hub.

Section 1's contrast case: "when an application is built using a client and
servers, raw data may have to be sent from one site to another if, for
example, the client obtains its computing cycles from a different site than
it obtains its data."  Here the hub (the client) asks every sensor site
(the servers) for its full raw reading series, and the expert system runs
centrally over the transferred data.  Experiment E1 compares the bytes this
puts on the wire against the mobile collector of
:mod:`repro.apps.stormcast.collector`.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.stormcast.prediction import EXPERT_AGENT_NAME
from repro.apps.stormcast.sensors import READINGS_FOLDER, SENSOR_CABINET
from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.folder import Folder
from repro.core.kernel import Kernel

__all__ = ["install_baseline_agents", "launch_baseline_client",
           "WEATHER_SERVER_NAME", "WEATHER_SINK_NAME", "BASELINE_CABINET"]

#: the per-sensor-site server that returns raw data on request
WEATHER_SERVER_NAME = "weather_server"
#: the hub-side sink that accumulates raw data responses
WEATHER_SINK_NAME = "weather_sink"
#: hub-side cabinet holding the received raw data and the final summary
BASELINE_CABINET = "baseline"


def weather_server_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Respond to a data request by shipping the full raw reading series to the hub.

    The request arrives as a courier delivery carrying a ``REQUEST`` folder
    with the hub's name.  The response is one (large) ``RAW_READINGS``
    folder sent back through the courier — every byte of padding crosses
    the network, which is precisely the cost E1 measures.
    """
    request = None
    if briefcase.has("REQUEST"):
        request = briefcase.get("REQUEST")
    if not isinstance(request, dict) or "hub" not in request:
        yield ctx.end_meet(0)
        return 0

    raw = ctx.cabinet(SENSOR_CABINET).elements(READINGS_FOLDER)
    response = Folder("RAW_READINGS", raw)
    # Tag the response with the origin so the sink can tell when every
    # sensor site has answered.
    response.push({"__origin__": ctx.site_name, "count": len(raw)})
    yield ctx.send_folder(response, request["hub"], WEATHER_SINK_NAME)
    yield ctx.end_meet(len(raw))
    return len(raw)


def weather_sink_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Hub-side sink: bank arriving raw readings in the baseline cabinet."""
    cabinet = ctx.cabinet(BASELINE_CABINET)
    stored = 0
    if briefcase.has("RAW_READINGS"):
        for record in briefcase.folder("RAW_READINGS").elements():
            if isinstance(record, dict) and "__origin__" in record:
                cabinet.put("responded", record["__origin__"])
            else:
                cabinet.put("raw", record)
                stored += 1
    yield ctx.end_meet(stored)
    return stored


def install_baseline_agents(kernel: Kernel, hub: str, sensor_sites: Sequence[str]) -> None:
    """Install the weather servers and the hub sink for the client-server baseline."""
    kernel.install_agent(hub, WEATHER_SINK_NAME, weather_sink_behaviour, replace=True)
    for site in sensor_sites:
        kernel.install_agent(site, WEATHER_SERVER_NAME, weather_server_behaviour,
                             replace=True)


def launch_baseline_client(kernel: Kernel, hub: str, sensor_sites: Sequence[str],
                           poll_interval: float = 0.1, max_polls: int = 200,
                           delay: float = 0.0) -> str:
    """Launch the hub-side client that requests, waits, and predicts centrally."""
    briefcase = Briefcase()
    briefcase.set("HUB", hub)
    sites_folder = briefcase.folder("SENSOR_SITES", create=True)
    for site in sensor_sites:
        sites_folder.enqueue(site)
    briefcase.set("POLL_INTERVAL", poll_interval)
    briefcase.set("MAX_POLLS", max_polls)
    return kernel.launch(hub, _baseline_client_behaviour, briefcase, delay=delay)


def _baseline_client_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Request raw data from every sensor site, wait for it, run the expert centrally."""
    hub = briefcase.get("HUB", ctx.site_name)
    sensor_sites = list(briefcase.folder("SENSOR_SITES", create=True).elements())
    poll_interval = float(briefcase.get("POLL_INTERVAL", 0.1))
    max_polls = int(briefcase.get("MAX_POLLS", 200))
    cabinet = ctx.cabinet(BASELINE_CABINET)

    # 1. Fan out one request per sensor site through the courier.
    for site in sensor_sites:
        request = Folder("REQUEST", [{"hub": hub, "requested_at": ctx.now}])
        yield ctx.send_folder(request, site, WEATHER_SERVER_NAME)

    # 2. Wait until every site has responded (or the poll budget runs out —
    #    crashed sensor sites simply never answer, which is itself a finding
    #    experiment E8 reports).
    polls = 0
    while polls < max_polls:
        responded = set(cabinet.elements("responded"))
        if all(site in responded for site in sensor_sites):
            break
        polls += 1
        yield ctx.sleep(poll_interval)

    # 3. Run the expert system centrally over everything that arrived.
    analysis = Briefcase()
    evidence = analysis.folder("OBSERVATIONS", create=True)
    for record in cabinet.elements("raw"):
        evidence.push(record)
    result = yield ctx.meet(EXPERT_AGENT_NAME, analysis)

    summary = {
        "sites_responded": len(set(cabinet.elements("responded"))),
        "sites_requested": len(sensor_sites),
        "raw_records_received": len(cabinet.elements("raw")),
        "predictions": result.value if result is not None else 0,
        "alerts": analysis.get("ALERT_COUNT", 0),
        "polls": polls,
        "completed_at": ctx.now,
    }
    cabinet.put("summary", summary)
    return summary
