"""The storm-prediction expert system (StormCast's analysis stage).

StormCast "uses a set of expert systems to predict severe storms in the
Arctic".  The reproduction implements a small rule-based predictor: given
the (filtered) observations collected from the sensor network, it scores
each region and issues a warning level.  The rules are deliberately simple
and deterministic — what the experiments measure is the *system* around the
expert system (who moves, how many bytes cross the network, how the answer
survives failures), not meteorology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.apps.stormcast.sensors import WeatherReading
from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext

__all__ = ["StormPrediction", "StormExpert", "make_expert_behaviour",
           "EXPERT_AGENT_NAME", "PREDICTIONS_CABINET"]

#: well-known name the expert-system agent is installed under at the hub
EXPERT_AGENT_NAME = "storm_expert"
#: cabinet at the hub where issued predictions are archived
PREDICTIONS_CABINET = "predictions"

#: warning levels, in increasing severity
WARNING_LEVELS = ("calm", "watch", "warning", "severe")


@dataclass
class StormPrediction:
    """The expert system's verdict for one station (or one region)."""

    station: str
    warning_level: str
    score: float
    evidence_count: int
    peak_wind: float
    min_pressure: float
    issued_at: float = 0.0

    def to_wire(self) -> Dict[str, object]:
        return {
            "station": self.station, "warning_level": self.warning_level,
            "score": self.score, "evidence_count": self.evidence_count,
            "peak_wind": self.peak_wind, "min_pressure": self.min_pressure,
            "issued_at": self.issued_at,
        }


class StormExpert:
    """Rule-based storm scorer.

    Scoring rules (each observation contributes):

    * wind ≥ 32 m/s → 3 points; ≥ 25 → 2; ≥ 20 → 1;
    * pressure ≤ 965 hPa → 3 points; ≤ 975 → 2; ≤ 985 → 1;
    * humidity ≥ 90 % adds half a point (moisture feeds the storm).

    The per-station score is normalised by the number of observations, so a
    single outlier in a long quiet series does not trigger a warning.
    """

    def __init__(self, watch_threshold: float = 0.8, warning_threshold: float = 1.8,
                 severe_threshold: float = 3.0):
        self.watch_threshold = watch_threshold
        self.warning_threshold = warning_threshold
        self.severe_threshold = severe_threshold

    def score_reading(self, reading: WeatherReading) -> float:
        """Points contributed by one observation."""
        points = 0.0
        if reading.wind_speed >= 32.0:
            points += 3.0
        elif reading.wind_speed >= 25.0:
            points += 2.0
        elif reading.wind_speed >= 20.0:
            points += 1.0
        if reading.pressure <= 965.0:
            points += 3.0
        elif reading.pressure <= 975.0:
            points += 2.0
        elif reading.pressure <= 985.0:
            points += 1.0
        if reading.humidity >= 90.0:
            points += 0.5
        return points

    def level_for(self, score: float) -> str:
        """Map a normalised score to a warning level."""
        if score >= self.severe_threshold:
            return "severe"
        if score >= self.warning_threshold:
            return "warning"
        if score >= self.watch_threshold:
            return "watch"
        return "calm"

    def predict(self, station: str, observations: Iterable[WeatherReading],
                issued_at: float = 0.0) -> StormPrediction:
        """Score one station's observations and issue a prediction."""
        readings = list(observations)
        if not readings:
            return StormPrediction(station=station, warning_level="calm", score=0.0,
                                   evidence_count=0, peak_wind=0.0, min_pressure=1013.0,
                                   issued_at=issued_at)
        total = sum(self.score_reading(reading) for reading in readings)
        # Normalise by the number of *storm-relevant* observations so a
        # pre-filtered evidence set and the full raw series produce the same
        # verdict (this is what makes the agent pipeline and the
        # client-server baseline comparable in E1/E8).
        relevant = [reading for reading in readings if reading.is_storm_precursor()]
        denominator = max(1, len(relevant))
        score = total / denominator
        level = self.level_for(score)
        # A single precursor in an otherwise calm series is not enough
        # evidence to escalate past a watch, no matter how dramatic it was.
        if len(relevant) < 3 and level in ("warning", "severe"):
            level = "watch"
        return StormPrediction(
            station=station,
            warning_level=level,
            score=round(score, 3),
            evidence_count=len(relevant),
            peak_wind=max(reading.wind_speed for reading in readings),
            min_pressure=min(reading.pressure for reading in readings),
            issued_at=issued_at,
        )

    def predict_many(self, by_station: Dict[str, List[WeatherReading]],
                     issued_at: float = 0.0) -> List[StormPrediction]:
        """Predictions for every station, sorted by station name."""
        return [self.predict(station, readings, issued_at=issued_at)
                for station, readings in sorted(by_station.items())]


def make_expert_behaviour(expert: Optional[StormExpert] = None) -> Callable:
    """Build the hub-side expert-system agent.

    Meet protocol: the caller's briefcase carries an ``OBSERVATIONS`` folder
    of reading wire records (already filtered or raw — the expert does not
    care); the agent groups them by station, predicts, archives the
    predictions in the hub's ``predictions`` cabinet and returns them in the
    ``PREDICTIONS`` folder.
    """
    scorer = expert or StormExpert()

    def expert_behaviour(ctx: AgentContext, briefcase: Briefcase):
        by_station: Dict[str, List[WeatherReading]] = {}
        if briefcase.has("OBSERVATIONS"):
            for record in briefcase.folder("OBSERVATIONS").elements():
                try:
                    reading = WeatherReading.from_wire(record)
                except (KeyError, TypeError, ValueError):
                    continue
                by_station.setdefault(reading.station, []).append(reading)

        predictions = scorer.predict_many(by_station, issued_at=ctx.now)
        output = briefcase.folder("PREDICTIONS", create=True)
        output.clear()
        cabinet = ctx.cabinet(PREDICTIONS_CABINET)
        for prediction in predictions:
            output.push(prediction.to_wire())
            cabinet.put("issued", prediction.to_wire())

        alerts = [prediction for prediction in predictions
                  if prediction.warning_level in ("warning", "severe")]
        briefcase.set("ALERT_COUNT", len(alerts))
        yield ctx.end_meet(len(predictions))
        return len(predictions)

    return expert_behaviour
