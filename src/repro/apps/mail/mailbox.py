"""Mailboxes: file cabinets holding delivered letters (paper section 6).

"We have started to build an interactive mail system where messages are
implemented by agents."  Messages travel as agents
(:mod:`repro.apps.mail.letter`); what they travel *to* is a mailbox agent
installed at every participating site, which files delivered letters into
the site-local ``mailbox`` cabinet — one folder per local user.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext, wait_until_durable
from repro.core.kernel import Kernel

__all__ = ["mailbox_behaviour", "MAILBOX_AGENT_NAME", "MAILBOX_CABINET",
           "inbox_of", "install_mailboxes"]

#: well-known name of the mailbox agent
MAILBOX_AGENT_NAME = "mailbox"
#: site-local cabinet where letters are filed
MAILBOX_CABINET = "mailbox"


def mailbox_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """File arriving letters, or answer local list/read/delete requests.

    Two request shapes are accepted:

    * a ``LETTER`` folder (one or more letter records) — the delivery path
      used by letter agents and couriered receipts;
    * an ``OP`` folder with ``"list"`` / ``"read"`` / ``"delete"`` plus a
      ``USER`` folder — the local interactive path (what a mail reader
      application meets the mailbox with).
    """
    cabinet = ctx.cabinet(MAILBOX_CABINET)

    if briefcase.has("LETTER"):
        filed = 0
        for letter in briefcase.folder("LETTER").elements():
            if not isinstance(letter, dict) or "to_user" not in letter:
                cabinet.put("rejected", letter)
                continue
            cabinet.put(f"user:{letter['to_user']}", letter)
            cabinet.put("log", {"event": "delivered", "letter_id": letter.get("letter_id"),
                                "to_user": letter["to_user"], "at": ctx.now})
            filed += 1
        briefcase.set("FILED", filed)
        yield ctx.end_meet(filed)
        # The spool is this system's durable record: under an explicit-flush
        # policy the mailbox itself is the flush point (group-commit
        # policies sync in the background, "none" is a no-op).  Flushing
        # after end_meet keeps delivery latency out of the sender's meet.
        store = ctx.store
        if filed and store is not None and not store.policy.group_commit:
            yield from wait_until_durable(ctx)
        return filed

    operation = briefcase.get("OP")
    user = briefcase.get("USER")
    if operation is None or user is None:
        briefcase.set("ERROR", "mailbox needs a LETTER folder or OP+USER folders")
        yield ctx.end_meet(None)
        return None

    folder_name = f"user:{user}"
    letters = [letter for letter in cabinet.elements(folder_name) if isinstance(letter, dict)]

    if operation == "list":
        listing = briefcase.folder("LISTING", create=True)
        listing.clear()
        for letter in letters:
            listing.push({"letter_id": letter.get("letter_id"),
                          "from_user": letter.get("from_user"),
                          "subject": letter.get("subject"), "sent_at": letter.get("sent_at")})
        yield ctx.end_meet(len(letters))
        return len(letters)

    if operation == "read":
        wanted = briefcase.get("LETTER_ID")
        body = briefcase.folder("MESSAGES", create=True)
        body.clear()
        for letter in letters:
            if wanted is None or letter.get("letter_id") == wanted:
                body.push(letter)
        yield ctx.end_meet(len(body))
        return len(body)

    if operation == "delete":
        wanted = briefcase.get("LETTER_ID")
        remaining = [letter for letter in letters
                     if wanted is not None and letter.get("letter_id") != wanted]
        if wanted is None:
            remaining = []
        deleted = len(letters) - len(remaining)
        if deleted:
            mailbox_folder = cabinet.folder(folder_name, create=True)
            mailbox_folder.replace(remaining)
            # replace() mutates the Folder directly, bypassing the cabinet
            # API: touch() re-indexes and marks the folder dirty so a
            # durable spool journals the deletion (otherwise recovery would
            # resurrect deleted letters).
            cabinet.touch(folder_name)
        briefcase.set("DELETED", deleted)
        yield ctx.end_meet(deleted)
        store = ctx.store
        if deleted and store is not None and not store.policy.group_commit:
            yield from wait_until_durable(ctx)
        return deleted

    briefcase.set("ERROR", f"unknown mailbox operation {operation!r}")
    yield ctx.end_meet(None)
    return None


def install_mailboxes(kernel: Kernel) -> None:
    """Install the mailbox agent at every site of *kernel* (idempotent)."""
    kernel.install_agent(None, MAILBOX_AGENT_NAME, mailbox_behaviour, replace=True)


def inbox_of(kernel: Kernel, site_name: str, user: str) -> List[Dict[str, object]]:
    """The letters currently filed for *user* at *site_name* (newest last)."""
    cabinet = kernel.site(site_name).cabinet(MAILBOX_CABINET)
    return [letter for letter in cabinet.elements(f"user:{user}")
            if isinstance(letter, dict)]
