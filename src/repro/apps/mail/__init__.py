"""The interactive mail system where messages are agents (paper section 6)."""

from repro.apps.mail.letter import (LETTER_AGENT_NAME, RECEIPT_FOLDER,
                                    letter_agent_behaviour, make_letter)
from repro.apps.mail.mailbox import (MAILBOX_AGENT_NAME, MAILBOX_CABINET, inbox_of,
                                     install_mailboxes, mailbox_behaviour)
from repro.apps.mail.mailer import MailSystem, build_mail_kernel

__all__ = [
    "MailSystem", "build_mail_kernel",
    "letter_agent_behaviour", "make_letter", "LETTER_AGENT_NAME", "RECEIPT_FOLDER",
    "mailbox_behaviour", "install_mailboxes", "inbox_of",
    "MAILBOX_AGENT_NAME", "MAILBOX_CABINET",
]
