"""User-facing mail operations: a thin facade over letter agents and mailboxes.

This is what the interactive mail example drives: send a letter, read an
inbox, broadcast an announcement to every site (using the diffusion agent
as the mailing-list transport), all against a running kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.mail.letter import LETTER_AGENT_NAME, make_letter
from repro.apps.mail.mailbox import (MAILBOX_AGENT_NAME, MAILBOX_CABINET, inbox_of,
                                     install_mailboxes)
from repro.core.briefcase import Briefcase
from repro.core.kernel import Kernel, KernelConfig
from repro.net.topology import Topology, lan

__all__ = ["MailSystem", "build_mail_kernel"]


def build_mail_kernel(sites: Optional[Sequence[str]] = None,
                      topology: Optional[Topology] = None,
                      transport: str = "tcp", seed: Optional[int] = None,
                      retention: str = "keep-results",
                      config: Optional[KernelConfig] = None) -> Kernel:
    """A kernel configured for a long-running mail deployment.

    Mail is churn: every letter is a short-lived agent (plus its couriers
    and mailbox meets), and every observable outcome is read back through
    the mailbox cabinets or ``Kernel.result_of`` — never from a terminal
    agent's briefcase.  The lifecycle ledger therefore defaults to the
    ``keep-results`` retention policy, archiving terminal agents into
    compact records so a mail site's memory does not grow with every
    letter ever sent.

    The mailbox cabinets are the system's spool: when the kernel runs with
    a durability policy other than "none" they are opted into the durable
    store, so a site crash loses at most the letters filed since the last
    commit/flush instead of silently keeping (or losing) everything.
    """
    if config is not None and seed is not None:
        raise ValueError("pass either seed or a full KernelConfig, not both "
                         "(a seed alongside an explicit config would be "
                         "silently ignored)")
    if topology is None:
        topology = lan(list(sites) if sites is not None
                       else ["tromso", "cornell", "sanfrancisco"])
    if config is None:
        config = KernelConfig(rng_seed=11 if seed is None else seed)
    kernel = Kernel(topology, transport=transport, config=config,
                    retention=retention)
    kernel.make_durable(MAILBOX_CABINET)   # no-op under policy "none"
    return kernel


class MailSystem:
    """A mail deployment over one kernel.

    >>> mail = MailSystem(kernel)            # doctest: +SKIP
    >>> mail.send("dag", "tromso", "fred", "cornell", "hello", "greetings!")
    >>> kernel.run()                         # doctest: +SKIP
    >>> mail.inbox("cornell", "fred")        # doctest: +SKIP
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        install_mailboxes(kernel)
        #: letter ids handed to the system, in send order
        self.sent_letter_ids: List[str] = []

    @classmethod
    def build(cls, sites: Optional[Sequence[str]] = None,
              topology: Optional[Topology] = None, transport: str = "tcp",
              seed: Optional[int] = None, retention: str = "keep-results",
              config: Optional[KernelConfig] = None) -> "MailSystem":
        """A MailSystem over a fresh :func:`build_mail_kernel` kernel."""
        return cls(build_mail_kernel(sites=sites, topology=topology,
                                     transport=transport, seed=seed,
                                     retention=retention, config=config))

    # -- sending ---------------------------------------------------------------

    def send(self, from_user: str, from_site: str, to_user: str, to_site: str,
             subject: str, body: str, want_receipt: bool = False,
             max_retries: int = 10, retry_interval: float = 0.5,
             delay: float = 0.0) -> str:
        """Launch a letter agent; returns the letter id (not the agent id)."""
        letter = make_letter(from_user, from_site, to_user, to_site, subject, body,
                             want_receipt=want_receipt)
        briefcase = Briefcase()
        briefcase.set("LETTER", letter)
        briefcase.set("MAX_RETRIES", max_retries)
        briefcase.set("RETRY_INTERVAL", retry_interval)
        self.kernel.launch(from_site, LETTER_AGENT_NAME, briefcase, delay=delay)
        self.sent_letter_ids.append(letter["letter_id"])
        return letter["letter_id"]

    def broadcast(self, from_user: str, from_site: str, subject: str, body: str,
                  delay: float = 0.0) -> str:
        """Announce to every site using the diffusion agent as the mailing list.

        The announcement is delivered by meeting each visited site's mailbox
        agent with a LETTER folder addressed to the local user ``"all"``.
        """
        letter = make_letter(from_user, from_site, "all", "*", subject, body)
        briefcase = Briefcase()
        briefcase.set("PAYLOAD", letter)
        briefcase.set("TASK", "mail_announce")
        briefcase.set("ORIGIN", from_site)
        # The TASK agent must exist at every site before the diffusion wave
        # arrives; install it lazily (idempotent).
        self.kernel.install_agent(None, "mail_announce", _announce_behaviour, replace=True)
        self.kernel.launch(from_site, "diffusion", briefcase, delay=delay)
        self.sent_letter_ids.append(letter["letter_id"])
        return letter["letter_id"]

    # -- reading -----------------------------------------------------------------

    def inbox(self, site_name: str, user: str) -> List[Dict[str, object]]:
        """Letters filed for *user* at *site_name*."""
        return inbox_of(self.kernel, site_name, user)

    def delivery_log(self, site_name: str) -> List[Dict[str, object]]:
        """The mailbox cabinet's event log at one site."""
        cabinet = self.kernel.site(site_name).cabinet(MAILBOX_CABINET)
        return [entry for entry in cabinet.elements("log") if isinstance(entry, dict)]

    def outcomes(self, sites: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
        """Every letter-agent outcome recorded across the given sites (default: all)."""
        results = []
        for site_name in (sites if sites is not None else self.kernel.site_names()):
            cabinet = self.kernel.site(site_name).cabinet(MAILBOX_CABINET)
            for outcome in cabinet.elements("outcomes"):
                if isinstance(outcome, dict):
                    entry = dict(outcome)
                    entry["site"] = site_name
                    results.append(entry)
        return results

    def delivered_count(self) -> int:
        """Letters delivered anywhere in the system so far."""
        return sum(1 for outcome in self.outcomes() if outcome.get("status") == "delivered")


def _announce_behaviour(ctx, briefcase):
    """Diffusion TASK body: file the broadcast letter with the local mailbox."""
    letter = briefcase.get("PAYLOAD")
    if not isinstance(letter, dict):
        yield ctx.sleep(0)
        return 0
    delivery = Briefcase()
    local_copy = dict(letter)
    local_copy["to_site"] = ctx.site_name
    local_copy["delivered_at"] = ctx.now
    delivery.folder("LETTER", create=True).push(local_copy)
    result = yield ctx.meet(MAILBOX_AGENT_NAME, delivery)
    return result.value if result is not None else 0
