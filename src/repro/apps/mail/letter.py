"""Letter agents: mail messages that are themselves mobile agents.

The mail system of paper section 6 implements "messages ... by agents": a
letter is not a passive payload handed to an MTA, it is an agent that
carries its own content, travels to the recipient's site, negotiates with
the mailbox there, retries while the destination is down (store-and-forward
at whatever site it is currently stranded on), and can send a delivery
receipt back — all using nothing but ``meet``, ``rexec`` and the courier.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.apps.mail.mailbox import MAILBOX_AGENT_NAME, MAILBOX_CABINET
from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.folder import Folder
from repro.core.registry import register_behaviour

__all__ = ["letter_agent_behaviour", "LETTER_AGENT_NAME", "make_letter",
           "RECEIPT_FOLDER"]

#: registered name of the letter agent (needed so it can jump between sites)
LETTER_AGENT_NAME = "letter_agent"
#: folder used for couriered delivery receipts
RECEIPT_FOLDER = "LETTER"

_letter_ids = itertools.count(1)


def make_letter(from_user: str, from_site: str, to_user: str, to_site: str,
                subject: str, body: str, want_receipt: bool = False,
                letter_id: Optional[str] = None) -> Dict[str, object]:
    """Build the letter record a letter agent carries."""
    return {
        "letter_id": letter_id or f"letter-{next(_letter_ids):06d}",
        "from_user": from_user, "from_site": from_site,
        "to_user": to_user, "to_site": to_site,
        "subject": subject, "body": body,
        "want_receipt": bool(want_receipt),
        "sent_at": None,          # stamped when the agent first runs
        "delivered_at": None,     # stamped by the agent at delivery time
        "hops": 0,
    }


def letter_agent_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Carry the letter to its destination site and file it in the mailbox there.

    Briefcase folders:

    * ``LETTER`` — the letter record (exactly one element);
    * ``MAX_RETRIES`` / ``RETRY_INTERVAL`` — store-and-forward knobs used
      while the destination site is unreachable;
    * ``RETRIES`` — how many delivery attempts have been made so far.

    Outcomes recorded in the current site's ``mailbox`` cabinet under
    ``outcomes``: ``delivered``, ``gave-up``.
    """
    letter = briefcase.get("LETTER")
    if not isinstance(letter, dict):
        yield ctx.sleep(0)
        return "malformed-letter"

    letter = dict(letter)
    if letter.get("sent_at") is None:
        letter["sent_at"] = ctx.now
    max_retries = int(briefcase.get("MAX_RETRIES", 10))
    retry_interval = float(briefcase.get("RETRY_INTERVAL", 0.5))
    retries = int(briefcase.get("RETRIES", 0))
    destination = letter["to_site"]

    if ctx.site_name != destination:
        # Not there yet: try to move.  A refused transfer means the
        # destination is down or unreachable — wait and retry from here,
        # which is store-and-forward at the stranded site.
        letter["hops"] = int(letter.get("hops", 0)) + 1
        briefcase.set("LETTER", letter)
        while retries <= max_retries:
            shipment = briefcase.copy()
            move = ctx.jump(shipment, destination)
            result = yield move
            if result is not None and result.value:
                return "forwarded"
            retries += 1
            briefcase.set("RETRIES", retries)
            ctx.cabinet(MAILBOX_CABINET).put(
                "log", {"event": "retry", "letter_id": letter.get("letter_id"),
                        "attempt": retries, "at": ctx.now})
            yield ctx.sleep(retry_interval)
        ctx.cabinet(MAILBOX_CABINET).put(
            "outcomes", {"status": "gave-up", "letter_id": letter.get("letter_id"),
                         "at": ctx.now, "stranded_at": ctx.site_name})
        return "gave-up"

    # At the destination: file the letter with the local mailbox agent.
    letter["delivered_at"] = ctx.now
    delivery = Briefcase()
    delivery_folder = delivery.folder("LETTER", create=True)
    delivery_folder.push(letter)
    result = yield ctx.meet(MAILBOX_AGENT_NAME, delivery)
    filed = result.value if result is not None else 0

    ctx.cabinet(MAILBOX_CABINET).put(
        "outcomes", {"status": "delivered" if filed else "mailbox-refused",
                     "letter_id": letter.get("letter_id"), "at": ctx.now,
                     "hops": letter.get("hops", 0)})

    # Optional delivery receipt, sent back as a couriered letter record
    # (cheaper than a whole agent for a one-line notification).
    if filed and letter.get("want_receipt") and letter.get("from_site") != ctx.site_name:
        receipt = {
            "letter_id": f"receipt-for-{letter.get('letter_id')}",
            "from_user": "postmaster", "from_site": ctx.site_name,
            "to_user": letter.get("from_user"), "to_site": letter.get("from_site"),
            "subject": f"delivered: {letter.get('subject')}",
            "body": f"your letter {letter.get('letter_id')} was delivered at {ctx.now:.3f}",
            "want_receipt": False, "sent_at": ctx.now, "delivered_at": None, "hops": 0,
        }
        yield ctx.send_folder(Folder(RECEIPT_FOLDER, [receipt]),
                              letter["from_site"], MAILBOX_AGENT_NAME)

    return "delivered" if filed else "mailbox-refused"


register_behaviour(LETTER_AGENT_NAME, letter_agent_behaviour, replace=True)
