"""Applications built on the agent substrate (paper section 6).

* :mod:`repro.apps.stormcast` — the StormCast storm-prediction pipeline;
* :mod:`repro.apps.mail` — the interactive mail system where messages are agents.
"""

__all__ = ["stormcast", "mail"]
