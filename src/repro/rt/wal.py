"""A real on-disk mirror of the logical write-ahead log.

Under ``KernelConfig(backend="realtime", store_realtime_dir=...)`` every
site's :class:`~repro.store.sitestore.SiteStore` gets a
:class:`FileWalSink`: each group commit's redo records are appended to
``<dir>/<site>.wal`` and the batch is flushed with a real ``os.fsync``
before the commit is acknowledged — the commit latency the sim backend
*prices* (``store_fsync_latency``) becomes a latency the realtime backend
*pays*.

The file is a mirror, not the recovery source: recovery still replays
the in-memory logical WAL (snapshot images + redo records), which is
what keeps crash/recovery semantics identical across backends.  The
crash-discard property holds on disk for free — a site crash cancels the
in-flight sync *before* :meth:`~repro.store.sitestore.SiteStore._finalize`
would have appended the batch, so un-fsynced state simply never reaches
the file.  :func:`read_wal_file` reads a sink's file back for tests and
post-mortems.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, List, Optional, Sequence

from repro.core.timing import default_timer
from repro.store.wal import WalRecord, WalSink

__all__ = ["FileWalSink", "read_wal_file"]


class FileWalSink(WalSink):
    """Appends committed redo records to one file, fsyncing per commit."""

    def __init__(self, path: str, fsync: bool = True):
        self.path = os.fspath(path)
        #: real fsyncs can be disabled for tests on slow filesystems; the
        #: flush (page-cache write) still happens per commit
        self.fsync = fsync
        self.commits = 0
        self.records_written = 0
        #: optional metrics hook (the kernel wires a histogram's ``observe``
        #: here): called with each commit's measured flush+fsync seconds
        self.latency_observe: Optional[Callable[[float], None]] = None
        self._handle = open(self.path, "ab")

    def commit(self, records: Sequence[WalRecord]) -> None:
        """Append one group commit's records and make them durable."""
        if self._handle is None:
            return  # closed sink: the store is shutting down
        started = default_timer() if self.latency_observe is not None else 0.0
        for record in records:
            pickle.dump((record.seq, record.cabinet, record.folder,
                         record.elements, record.committed_at),
                        self._handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.commits += 1
        self.records_written += len(records)
        if self.latency_observe is not None:
            self.latency_observe(default_timer() - started)

    def close(self) -> None:
        """Close the file; idempotent."""
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __repr__(self) -> str:
        return (f"FileWalSink({self.path!r}, {self.records_written} records "
                f"over {self.commits} commits)")


def read_wal_file(path: str) -> List[WalRecord]:
    """Read a :class:`FileWalSink` file back into :class:`WalRecord` objects.

    Truncated trailing data (a crash mid-append on a real machine) ends
    the read rather than raising: everything before the torn tail was
    fsynced and is returned.
    """
    records: List[WalRecord] = []
    with open(path, "rb") as handle:
        while True:
            try:
                seq, cabinet, folder, elements, committed_at = pickle.load(handle)
            except EOFError:
                break
            except pickle.UnpicklingError:
                break  # torn tail: keep the durable prefix
            records.append(WalRecord(seq, cabinet, folder, elements,
                                     committed_at))
    return records
