"""repro.rt — the wall-clock (realtime) execution backend.

The other half of the :mod:`repro.core.timing` seam: the same kernel,
transports, store and fault layer, running on real time instead of
simulated time (``KernelConfig(backend="realtime")``).

* :class:`AsyncioScheduler` — an :class:`~repro.net.simclock.EventLoop`
  subclass whose inter-event gaps are real ``asyncio`` sleeps: transport
  delivery latencies become real awaits, Horus heartbeat/detection
  delays run off real timers, WAL commit windows really elapse.
* :class:`WallClock` — monotonic elapsed-seconds clock behind it.
* :class:`FileWalSink` / :func:`read_wal_file` — optional real on-disk
  WAL with real ``fsync`` per group commit
  (``KernelConfig(store_realtime_dir=...)``).

Realtime initially requires ``shards=1`` (one wall-clock loop; shard the
sim backend instead) and is single-process — real sockets between site
processes are the next step on the roadmap.
"""

from repro.rt.scheduler import AsyncioScheduler, WallClock
from repro.rt.wal import FileWalSink, read_wal_file

__all__ = ["AsyncioScheduler", "WallClock", "FileWalSink", "read_wal_file"]
