"""Wall-clock execution: the realtime implementation of the timing seam.

The paper's system ran on real Unix hosts; ``KernelConfig(backend="sim")``
replays it on a simulated clock.  This module is the other half of the
:mod:`repro.core.timing` seam: :class:`AsyncioScheduler` runs the *same*
heap of events — it subclasses :class:`~repro.net.simclock.EventLoop`, so
``schedule``/``schedule_at``/``cancel`` and all the lazy-deletion
bookkeeping are shared — but the gap to each due event is a real
``asyncio`` sleep instead of a clock jump.  Transport delivery latencies,
Horus heartbeat/detection delays, and WAL commit windows thereby become
real waits on real timers, and the flow layer's cost models become
measurements instead of prices.

What realtime does and does not guarantee:

* Events still fire one at a time in ``(time, sequence)`` order — the
  callbacks themselves never overlap, so kernel state needs no locking.
* Event *timestamps* are wall-derived and therefore not reproducible:
  two runs of the same seed produce the same logical outcomes (the rng
  streams and callback logic are identical) but different times, and
  events whose scheduled times are closer together than scheduling
  jitter may swap order between runs.  Determinism lives in the sim
  backend; realtime buys honesty, not replayability.
* Late deadlines are forgiven: :meth:`AsyncioScheduler.schedule_at`
  clamps a timestamp that wall time has already passed to "now" (the
  sim loop raises instead — lateness there is a scheduling bug, here it
  is physics).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.core.errors import KernelError
from repro.core.timing import default_timer
from repro.net.simclock import Event, EventLoop

__all__ = ["AsyncioScheduler", "WallClock"]

#: events due within this many seconds fire immediately instead of
#: sleeping again — below timer resolution, another sleep cannot help
_DUE_SLACK = 1e-6


class WallClock:
    """Monotonic wall-clock time, zeroed at construction.

    ``now`` is real elapsed seconds since the clock was built, with a
    logical floor: ``_advance_to`` (called by the scheduler as it pops
    each event) can raise the floor so that an event observes a ``now``
    at least equal to its own timestamp even when the sleep that led to
    it woke marginally early.  The floor never rewinds, so the clock is
    monotonic like :class:`~repro.net.simclock.SimClock`.
    """

    __slots__ = ("_timer", "_epoch", "_floor")

    def __init__(self, timer: Callable[[], float] = default_timer):
        self._timer = timer
        self._epoch = timer()
        self._floor = 0.0

    @property
    def now(self) -> float:
        """Seconds since construction (never below the logical floor)."""
        return max(self._floor, self._timer() - self._epoch)

    def _advance_to(self, timestamp: float) -> None:
        if timestamp > self._floor:
            self._floor = timestamp

    def __repr__(self) -> str:
        return f"WallClock(now={self.now:.6f})"


class AsyncioScheduler(EventLoop):
    """An :class:`EventLoop` whose inter-event gaps are real asyncio sleeps.

    The heap, sequence numbers, cancellation and ``step()`` execution are
    inherited unchanged — only :meth:`run` and :meth:`run_until` differ:
    they drive the heap from a private ``asyncio`` event loop, awaiting
    ``asyncio.sleep(dt)`` until the earliest event is due and then firing
    it synchronously.  One event at a time, in ``(time, seq)`` order,
    exactly like the sim loop.

    The owned asyncio loop is created lazily on first run and released by
    :meth:`close` (idempotent; the kernel calls it from ``Kernel.close``).
    """

    def __init__(self, timer: Callable[[], float] = default_timer):
        super().__init__(clock=WallClock(timer))
        self._aio: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        #: optional metrics hook (the kernel wires a histogram's ``observe``
        #: here): called with each fired event's wake lag in seconds — how
        #: far past its scheduled time the wall clock was when it ran
        self.lag_observe: Optional[Callable[[float], None]] = None

    # -- scheduling ------------------------------------------------------------

    def schedule_at(self, timestamp: float, callback: Callable[[], Any],
                    label: str = "") -> Event:
        """Run *callback* at wall time *timestamp*, or immediately if past.

        Wall time moves between a caller computing a deadline and this
        call, so a slightly-past timestamp is reality, not a bug: the
        event is clamped to "now" and fires as soon as possible.  (The
        sim loop's strict past-check stays — determinism makes lateness
        diagnosable there.)
        """
        return self.schedule(max(0.0, timestamp - self.clock.now),
                             callback, label)

    # -- execution -------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue on wall clock; returns events executed.

        Blocks the calling thread for real time: the wall duration is
        roughly the horizon of the scheduled events themselves.
        """
        return self._drive(None, max_events)

    def run_until(self, timestamp: float,
                  max_events: Optional[int] = None) -> int:
        """Run events due up to wall time *timestamp* (sleeping out the rest).

        Mirrors the sim loop's contract: events beyond the horizon stay
        queued, the clock's floor ends at *timestamp* on a clean finish,
        and a *max_events* stop with due events still queued leaves the
        clock where the last event left it.
        """
        return self._drive(timestamp, max_events)

    def _drive(self, horizon: Optional[float],
               max_events: Optional[int]) -> int:
        if self._closed:
            raise KernelError("AsyncioScheduler is closed; realtime kernels "
                              "cannot run after close()")
        if self._aio is None:
            self._aio = asyncio.new_event_loop()
        return self._aio.run_until_complete(self._drain(horizon, max_events))

    async def _drain(self, horizon: Optional[float],
                     max_events: Optional[int]) -> int:
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                upcoming = self._peek()
                if (upcoming is not None
                        and (horizon is None
                             or upcoming.time <= horizon + 1e-12)):
                    return executed  # due events remain: clock stays put
                break  # nothing due: the horizon may still be slept out
            upcoming = self._peek()
            if upcoming is None:
                break
            if horizon is not None and upcoming.time > horizon + 1e-12:
                break
            gap = upcoming.time - self.clock.now
            if gap > _DUE_SLACK:
                await asyncio.sleep(gap)
                continue  # re-peek: the sleep may have been undershot
            if self.lag_observe is not None:
                self.lag_observe(max(0.0, -gap))
            self.step()
            executed += 1
        if horizon is not None:
            remaining = horizon - self.clock.now
            if remaining > _DUE_SLACK:
                await asyncio.sleep(remaining)
            self.clock._advance_to(max(self.clock.now, horizon))
        return executed

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the owned asyncio loop; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._aio is not None:
            self._aio.close()
            self._aio = None

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"AsyncioScheduler(now={self.clock.now:.6f}, "
                f"pending={self.pending}, processed={self._processed}, "
                f"{state})")
