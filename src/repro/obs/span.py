"""The span model: timed, causally linked records of one unit of work.

A *span* covers one operation — an FT hop, a WAL group commit, a fabric
flush, a shard handoff, an agent migration — with a start/end in
simulated time, optional wall-clock stamps (realtime backend), and
parent/child causality inside a *trace*.

Identity is **content-derived and deterministic**: a span id is
``"{trace_id}/{name}#{key}"`` where the key comes from semantic state
that is identical on every execution backend (hop sequence numbers,
site names, per-engine event-order counters).  Wall times, process-local
object ids and thread interleavings never leak into identity, which is
what lets the property suite assert *identical span trees* across
``shard_backend=inproc|thread|process``.

Trace context travels **in the agent's briefcase** as two plain string
folders (:data:`TRACE_ID_FOLDER`, :data:`TRACE_PARENT_FOLDER`), so it
survives everything a briefcase survives: coalescing into a delivery-
fabric batch envelope, a pickled hop through a process worker's pipe,
and the migration itself.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["Span", "TRACE_ID_FOLDER", "TRACE_PARENT_FOLDER", "span_id",
           "infra_trace_id"]

#: briefcase folder naming the trace an agent belongs to (a plain string)
TRACE_ID_FOLDER = "TRACE_ID"
#: briefcase folder naming the parent span for the agent's next span
TRACE_PARENT_FOLDER = "TRACE_PARENT"


def span_id(trace_id: str, name: str, key: str) -> str:
    """The deterministic span id: ``trace/name#key``."""
    return f"{trace_id}/{name}#{key}"


def infra_trace_id(kind: str, scope: str) -> str:
    """Trace id for infrastructure spans not tied to any agent.

    WAL commits, fabric flushes, recoveries and sync rounds belong to no
    itinerary; they are grouped into per-scope pseudo-traces (``~store:n3``,
    ``~fabric:n1->n2``) so the report can still bucket them.
    """
    return f"~{kind}:{scope}"


class Span:
    """One timed operation.  Mutable until finished, then emitted to a sink."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind", "site",
                 "source", "destination", "start", "end", "attrs",
                 "wall_start", "wall_end")

    def __init__(self, trace_id: str, sid: str, name: str,
                 parent_id: Optional[str] = None, kind: str = "",
                 site: str = "", source: str = "", destination: str = "",
                 start: float = 0.0, end: Optional[float] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 wall_start: Optional[float] = None,
                 wall_end: Optional[float] = None):
        self.trace_id = trace_id
        self.span_id = sid
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.site = site
        self.source = source
        self.destination = destination
        self.start = start
        self.end = end
        self.attrs = attrs
        self.wall_start = wall_start
        self.wall_end = wall_end

    @property
    def duration(self) -> float:
        """Simulated seconds covered (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able dict (the sink / wire representation)."""
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "site": self.site,
            "start": self.start,
            "end": self.start if self.end is None else self.end,
        }
        if self.source:
            out["source"] = self.source
        if self.destination:
            out["destination"] = self.destination
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.wall_start is not None:
            out["wall_start"] = self.wall_start
        if self.wall_end is not None:
            out["wall_end"] = self.wall_end
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (report-side)."""
        return cls(payload["trace_id"], payload["span_id"], payload["name"],
                   parent_id=payload.get("parent_id"),
                   kind=payload.get("kind", ""), site=payload.get("site", ""),
                   source=payload.get("source", ""),
                   destination=payload.get("destination", ""),
                   start=payload.get("start", 0.0), end=payload.get("end"),
                   attrs=payload.get("attrs"),
                   wall_start=payload.get("wall_start"),
                   wall_end=payload.get("wall_end"))

    def __repr__(self) -> str:
        return (f"Span({self.span_id} kind={self.kind} site={self.site!r} "
                f"[{self.start:.6g}, {self.start if self.end is None else self.end:.6g}])")
