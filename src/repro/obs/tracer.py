"""Tracers: per-kernel span recording, and the merged facade view.

Hot-path contract: every instrumentation point is guarded by a single
attribute read (``if tracer.active:``), and a disabled tracer allocates
nothing — the "near-zero cost when sampling is off" half of the E17
overhead claim.

Determinism contract: sampling decisions hash the trace id (CRC-32), and
anonymous span keys come from a per-tracer event-order counter — both
identical across execution backends because every engine kernel executes
the same event sequence on every backend (the PR 7 invariant).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.sinks import RingSink
from repro.obs.span import Span, span_id

__all__ = ["Tracer", "TracerView", "SpanMirror"]

#: CRC-32 sampling: a trace is kept when crc32(trace_id) < sample * 2**32
_SAMPLE_SPACE = float(2 ** 32)


class Tracer:
    """Records spans for one kernel (one engine, or the classic kernel)."""

    __slots__ = ("clock", "sink", "sample", "wall_timer", "enabled", "_seq")

    def __init__(self, clock=None, sink=None, sample: float = 1.0,
                 wall_timer: Optional[Callable[[], float]] = None,
                 enabled: bool = True):
        #: anything with a ``.now`` attribute (the kernel's event loop)
        self.clock = clock
        self.sink = sink if sink is not None else RingSink()
        self.sample = float(sample)
        #: when set (realtime backend) spans get wall_start / wall_end stamps
        self.wall_timer = wall_timer
        self.enabled = bool(enabled)
        #: per-tracer span counter used for anonymous keys; consumed in
        #: engine event order, so deterministic across execution backends
        self._seq = 0

    @classmethod
    def disabled(cls) -> "Tracer":
        """A tracer that records nothing (the default on every kernel)."""
        return cls(enabled=False, sink=_NULL_SINK)

    # -- predicates ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """The one-attribute hot-path guard."""
        return self.enabled

    def sampled(self, trace_id: str) -> bool:
        """Deterministic per-trace sampling decision (CRC-32 of the id)."""
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return zlib.crc32(trace_id.encode("utf-8")) < self.sample * _SAMPLE_SPACE

    # -- span lifecycle --------------------------------------------------------

    def next_key(self, scope: str) -> str:
        """An anonymous span key: ``scope:n`` with a deterministic counter."""
        self._seq += 1
        return f"{scope}:{self._seq}"

    def begin(self, trace_id: str, name: str, key: str,
              parent_id: Optional[str] = None, kind: str = "", site: str = "",
              source: str = "", destination: str = "",
              attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span now; finish it with :meth:`finish`."""
        span = Span(trace_id, span_id(trace_id, name, key), name,
                    parent_id=parent_id, kind=kind, site=site, source=source,
                    destination=destination,
                    start=self.clock.now if self.clock is not None else 0.0,
                    attrs=attrs)
        if self.wall_timer is not None:
            span.wall_start = self.wall_timer()
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Close *span* now and emit it to the sink."""
        span.end = self.clock.now if self.clock is not None else span.start
        if self.wall_timer is not None:
            span.wall_end = self.wall_timer()
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)
        self.sink.emit(span.to_dict())
        return span

    def record(self, trace_id: str, name: str, key: str, start: float,
               end: Optional[float] = None, parent_id: Optional[str] = None,
               kind: str = "", site: str = "", source: str = "",
               destination: str = "",
               attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Emit a complete span in one call (start/end already known)."""
        span = Span(trace_id, span_id(trace_id, name, key), name,
                    parent_id=parent_id, kind=kind, site=site, source=source,
                    destination=destination, start=start,
                    end=start if end is None else end, attrs=attrs)
        if self.wall_timer is not None:
            span.wall_end = self.wall_timer()
            span.wall_start = span.wall_end
        self.sink.emit(span.to_dict())
        return span

    # -- reading ---------------------------------------------------------------

    def export(self) -> List[Dict[str, Any]]:
        """Every span the sink retains, oldest first."""
        return self.sink.export()

    def since(self, seq: int):
        """Delta export for state digests (see :meth:`RingSink.since`)."""
        if hasattr(self.sink, "since"):
            return self.sink.since(seq)
        return seq, []

    def close(self) -> None:
        self.sink.close()


class _NullSink:
    """Swallow everything (the disabled tracer's sink)."""

    __slots__ = ()

    def emit(self, span: Dict[str, Any]) -> None:  # pragma: no cover - guard
        pass

    def export(self) -> List[Dict[str, Any]]:
        return []

    def since(self, seq: int):
        return seq, []

    def close(self) -> None:
        pass


_NULL_SINK = _NullSink()


class SpanMirror:
    """Coordinator-side stand-in for a process worker's tracer.

    The worker records spans into its own ring; each state digest ships
    the delta and :meth:`absorb` accumulates it here, so the facade's
    :class:`TracerView` reads process shards exactly like in-process ones.
    """

    __slots__ = ("_spans", "enabled")

    def __init__(self, enabled: bool = False):
        self._spans: List[Dict[str, Any]] = []
        self.enabled = enabled

    @property
    def active(self) -> bool:
        return self.enabled

    def absorb(self, spans: Sequence[Dict[str, Any]]) -> None:
        self._spans.extend(spans)

    def export(self) -> List[Dict[str, Any]]:
        return list(self._spans)

    def close(self) -> None:
        pass


class TracerView:
    """Merged read-only view over several tracers (the sharded facade).

    ``export()`` interleaves every part's spans in (start, span_id) order
    so a facade trace dump reads exactly like a classic kernel's.
    """

    __slots__ = ("_parts", "_own")

    def __init__(self, parts: Sequence, own: Optional[Tracer] = None):
        self._parts = list(parts)
        self._own = own

    @property
    def active(self) -> bool:
        if self._own is not None and self._own.active:
            return True
        return any(part.active for part in self._parts)

    @property
    def own(self) -> Optional[Tracer]:
        """The facade's own tracer (sync-round spans), if any."""
        return self._own

    def export(self) -> List[Dict[str, Any]]:
        merged: List[Dict[str, Any]] = []
        for part in self._parts:
            merged.extend(part.export())
        if self._own is not None:
            merged.extend(self._own.export())
        merged.sort(key=lambda span: (span.get("start", 0.0),
                                      span.get("span_id", "")))
        return merged

    def close(self) -> None:
        for part in self._parts:
            part.close()
        if self._own is not None:
            self._own.close()
