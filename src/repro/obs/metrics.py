"""Metrics registry: counters, gauges, bounded histograms, one seam.

Everything that wants to publish a number — ``NetworkStats``, the flow
controllers, the realtime scheduler's sleep lag, tcp connection reuse —
goes through one :class:`MetricsRegistry` per kernel.  Sources register
once (:meth:`MetricsRegistry.register`) and ``collect()`` returns a flat
JSON-able dict, which is what ``Kernel.store_summary``, shard digests
and benchmark JSON all read.

Histograms are *bounded*: fixed bucket boundaries plus streaming
count/total/min/max, so a million observations cost a handful of ints.
Registries pickle across the process shard backend via
``export_state()`` / ``load_state()``.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsView"]

#: default bucket upper bounds: exponential, micro-seconds to minutes
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 60.0)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value: set directly, or backed by a callable."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self.fn is not None:
            return self.fn()
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Bounded histogram: fixed buckets + streaming count/total/min/max.

    ``bucket_counts[i]`` counts observations <= ``bounds[i]``; the last
    slot is the overflow bucket.  Quantiles are estimated from the bucket
    an observation landed in (upper-bound estimate), which is exactly the
    fidelity a p50/p99 latency breakdown needs at O(len(bounds)) memory.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate (None while empty)."""
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= target and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """One kernel's metrics: owned instruments plus registered sources."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_sources")

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: the seam: name -> callable returning a dict merged into collect()
        self._sources: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # -- instruments (get-or-create) -------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        try:
            gauge = self._gauges[name]
        except KeyError:
            gauge = self._gauges[name] = Gauge(name, fn)
            return gauge
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            histogram = self._histograms[name] = Histogram(name, bounds)
            return histogram

    def register(self, name: str,
                 source: Callable[[], Dict[str, Any]]) -> None:
        """Register a named source whose dict is merged into ``collect()``.

        This is how ``NetworkStats`` (and anything else with a snapshot)
        is re-exposed: ``registry.register("net", stats.snapshot)``.
        Sources are re-read on every collect, so the registry always
        reflects live counters.
        """
        self._sources[name] = source

    def unregister(self, name: str) -> None:
        self._sources.pop(name, None)

    # -- reading ---------------------------------------------------------------

    def collect_own(self) -> Dict[str, Any]:
        """Owned instruments only (no sources) as a flat JSON-able dict."""
        out: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.summary()
        return out

    def collect(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """Sources merged with owned instruments, optionally prefix-filtered."""
        out: Dict[str, Any] = {}
        for source in self._sources.values():
            out.update(source())
        out.update(self.collect_own())
        if prefix is None:
            return out
        return {key: value for key, value in out.items()
                if key.startswith(prefix)}

    # -- state transfer (process shard backend) --------------------------------

    def export_state(self) -> Dict[str, Any]:
        """Owned instruments as one picklable dict (sources are not shipped —
        the coordinator re-registers its own)."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: {"bounds": list(h.bounds),
                       "bucket_counts": list(h.bucket_counts),
                       "count": h.count, "total": h.total,
                       "min": h.min, "max": h.max}
                for name, h in self._histograms.items()},
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Replace owned instruments from an :meth:`export_state` dict."""
        self._counters.clear()
        for name, value in state.get("counters", {}).items():
            self.counter(name).value = value
        self._gauges.clear()
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        self._histograms.clear()
        for name, payload in state.get("histograms", {}).items():
            histogram = self.histogram(name, payload["bounds"])
            histogram.bucket_counts = list(payload["bucket_counts"])
            histogram.count = payload["count"]
            histogram.total = payload["total"]
            histogram.min = payload["min"]
            histogram.max = payload["max"]


class MetricsView:
    """Merged read-only registry view (the sharded facade's ``metrics``).

    Counters and histograms sum across parts; gauges sum too (every gauge
    in the system is an additive quantity like backlog or pair counts).
    Registered facade-level sources (the merged ``StatsView`` snapshot)
    are consulted exactly like on a classic kernel, so
    ``kernel.metrics.collect()`` has one shape everywhere.
    """

    __slots__ = ("_parts", "_sources")

    def __init__(self, parts: Sequence[MetricsRegistry]):
        self._parts = list(parts)
        self._sources: Dict[str, Callable[[], Dict[str, Any]]] = {}

    def register(self, name: str,
                 source: Callable[[], Dict[str, Any]]) -> None:
        self._sources[name] = source

    def unregister(self, name: str) -> None:
        self._sources.pop(name, None)

    def collect_own(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        histograms: Dict[str, Histogram] = {}
        for part in self._parts:
            for name, counter in part._counters.items():
                merged[name] = merged.get(name, 0) + counter.value
            for name, gauge in part._gauges.items():
                merged[name] = merged.get(name, 0) + gauge.value
            for name, histogram in part._histograms.items():
                into = histograms.get(name)
                if into is None:
                    into = histograms[name] = Histogram(name, histogram.bounds)
                into.merge_from(histogram)
        for name, histogram in histograms.items():
            merged[name] = histogram.summary()
        return merged

    def collect(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for source in self._sources.values():
            out.update(source())
        out.update(self.collect_own())
        if prefix is None:
            return out
        return {key: value for key, value in out.items()
                if key.startswith(prefix)}

    def counter(self, name: str) -> Counter:
        """Create/fetch a counter on the first part (facade-owned metrics)."""
        return self._parts[0].counter(name) if self._parts else Counter(name)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        return (self._parts[0].histogram(name, bounds)
                if self._parts else Histogram(name, bounds))
