"""Trace analyzer: JSONL trace file -> timelines and latency breakdowns.

The functions here (and the CLI: ``python -m repro.obs.report trace.jsonl``)
turn a span dump into the two views the experiments need:

* **per-itinerary hop timelines** — every span of one trace in causal
  order: launch, each hop's execution, its checkpoint barrier wait, the
  rear-guard releases, and the migrations between hops;
* **p50/p99 breakdowns** — spans grouped per (source, destination) pair,
  per subsystem (``kind``), or per span name.

When spans carry wall-clock stamps (realtime backend),
:func:`observed_costs` extracts measured per-operation wall latencies —
the feed-back path from observation to sim ``CostModel`` prices.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["load_trace", "build_trees", "trace_ids", "hop_timeline",
           "format_timeline", "breakdown", "percentile", "observed_costs",
           "main"]


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace file into a list of span dicts (blank-line safe)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def trace_ids(spans: Iterable[Dict[str, Any]],
              include_infra: bool = False) -> List[str]:
    """Distinct trace ids, agent traces first, each ordered by first start."""
    first_start: Dict[str, float] = {}
    for span in spans:
        tid = span["trace_id"]
        if not include_infra and tid.startswith("~"):
            continue
        start = span.get("start", 0.0)
        if tid not in first_start or start < first_start[tid]:
            first_start[tid] = start
    return sorted(first_start, key=lambda tid: (first_start[tid], tid))


class SpanNode:
    """One span plus its children (sorted by start time, then id)."""

    __slots__ = ("span", "children")

    def __init__(self, span: Dict[str, Any]):
        self.span = span
        self.children: List["SpanNode"] = []

    @property
    def duration(self) -> float:
        return self.span.get("end", self.span.get("start", 0.0)) - \
            self.span.get("start", 0.0)

    def walk(self, depth: int = 0):
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def tree_shape(self) -> Tuple:
        """Hashable (id, children-shapes) tuple for tree-equality asserts."""
        return (self.span["span_id"],
                tuple(child.tree_shape() for child in self.children))


def build_trees(spans: Iterable[Dict[str, Any]]
                ) -> Dict[str, List[SpanNode]]:
    """Group spans by trace and link parents to children.

    Returns ``{trace_id: [root SpanNode, ...]}``.  A span whose parent is
    missing from the dump (ring overflow, sampling boundary) is promoted
    to a root rather than dropped.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    for span in spans:
        by_trace[span["trace_id"]].append(span)
    trees: Dict[str, List[SpanNode]] = {}
    for tid, members in by_trace.items():
        nodes = {span["span_id"]: SpanNode(span) for span in members}
        roots: List[SpanNode] = []
        for node in nodes.values():
            parent = node.span.get("parent_id")
            if parent is not None and parent in nodes:
                nodes[parent].children.append(node)
            else:
                roots.append(node)
        order = lambda node: (node.span.get("start", 0.0), node.span["span_id"])
        for node in nodes.values():
            node.children.sort(key=order)
        roots.sort(key=order)
        trees[tid] = roots
    return trees


def hop_timeline(spans: Iterable[Dict[str, Any]],
                 trace_id: str) -> List[Dict[str, Any]]:
    """One trace's spans as flat causal-order rows (depth included).

    The itinerary view: roots first, children nested beneath their
    parents, each row carrying name/site/start/end/duration/attrs.
    """
    trees = build_trees(span for span in spans
                        if span["trace_id"] == trace_id)
    rows: List[Dict[str, Any]] = []
    for root in trees.get(trace_id, []):
        for depth, node in root.walk():
            span = node.span
            row = {
                "depth": depth,
                "name": span["name"],
                "span_id": span["span_id"],
                "parent_id": span.get("parent_id"),
                "site": span.get("site", ""),
                "start": span.get("start", 0.0),
                "end": span.get("end", span.get("start", 0.0)),
                "duration": node.duration,
            }
            if span.get("source"):
                row["source"] = span["source"]
            if span.get("destination"):
                row["destination"] = span["destination"]
            if span.get("attrs"):
                row["attrs"] = span["attrs"]
            if span.get("wall_start") is not None:
                row["wall_start"] = span["wall_start"]
                row["wall_end"] = span.get("wall_end")
            rows.append(row)
    return rows


def format_timeline(rows: Sequence[Dict[str, Any]]) -> str:
    """Render :func:`hop_timeline` rows as an indented text timeline."""
    lines = []
    for row in rows:
        indent = "  " * row["depth"]
        where = row.get("site") or ""
        if row.get("source"):
            where = f"{row['source']}->{row.get('destination', '?')}"
        extra = ""
        if row.get("attrs"):
            extra = " " + " ".join(f"{key}={value}" for key, value
                                   in sorted(row["attrs"].items()))
        lines.append(f"{indent}{row['start']:>12.6f}s  {row['name']:<12} "
                     f"{where:<18} +{row['duration']:.6f}s{extra}")
    return "\n".join(lines)


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of *values* (None when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


_BREAKDOWN_KEYS = {
    "pair": lambda span: (f"{span['source']}->{span['destination']}"
                          if span.get("source") and span.get("destination")
                          else None),
    "subsystem": lambda span: span.get("kind") or None,
    "name": lambda span: span.get("name") or None,
    "site": lambda span: span.get("site") or None,
}


def breakdown(spans: Iterable[Dict[str, Any]],
              by: str = "subsystem") -> Dict[str, Dict[str, Any]]:
    """Duration stats per key: count, total, mean, p50, p99 (sim seconds).

    ``by`` is one of ``"pair"`` (source->destination), ``"subsystem"``
    (span kind), ``"name"``, or ``"site"``; spans without that key are
    skipped.
    """
    try:
        key_of = _BREAKDOWN_KEYS[by]
    except KeyError:
        raise ValueError(f"unknown breakdown key {by!r} "
                         f"(one of {sorted(_BREAKDOWN_KEYS)})") from None
    groups: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        key = key_of(span)
        if key is None:
            continue
        groups[key].append(span.get("end", span.get("start", 0.0))
                           - span.get("start", 0.0))
    out: Dict[str, Dict[str, Any]] = {}
    for key, durations in sorted(groups.items()):
        out[key] = {
            "count": len(durations),
            "total": sum(durations),
            "mean": sum(durations) / len(durations),
            "p50": percentile(durations, 0.50),
            "p99": percentile(durations, 0.99),
        }
    return out


def observed_costs(spans: Iterable[Dict[str, Any]]
                   ) -> Dict[str, Dict[str, Any]]:
    """Measured wall-clock latency per span name (realtime traces only).

    Spans without wall stamps are ignored.  The result — e.g. mean
    observed ``wal-commit`` (fsync) or ``migration`` (setup+transfer)
    wall seconds — is what a calibration pass feeds back into the sim
    :class:`~repro.flow.cost.CostModel` prices.
    """
    groups: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        wall_start = span.get("wall_start")
        wall_end = span.get("wall_end")
        if wall_start is None or wall_end is None:
            continue
        groups[span["name"]].append(wall_end - wall_start)
    return {name: {
        "count": len(walls),
        "mean": sum(walls) / len(walls),
        "p50": percentile(walls, 0.50),
        "p99": percentile(walls, 0.99),
    } for name, walls in sorted(groups.items())}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: print timelines + breakdowns for a JSONL trace file."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.obs.report TRACE.jsonl "
              "[--trace TRACE_ID] [--by pair|subsystem|name|site]")
        return 0 if argv else 2
    path = argv[0]
    wanted: Optional[str] = None
    by = "subsystem"
    rest = argv[1:]
    while rest:
        flag = rest.pop(0)
        if flag == "--trace" and rest:
            wanted = rest.pop(0)
        elif flag == "--by" and rest:
            by = rest.pop(0)
        else:
            print(f"unknown argument {flag!r}", file=sys.stderr)
            return 2
    spans = load_trace(path)
    print(f"{len(spans)} spans in {path}")
    targets = [wanted] if wanted else trace_ids(spans)[:10]
    for tid in targets:
        rows = hop_timeline(spans, tid)
        if not rows:
            continue
        print(f"\n== trace {tid} ({len(rows)} spans) ==")
        print(format_timeline(rows))
    print(f"\n== breakdown by {by} (sim seconds) ==")
    for key, stats in breakdown(spans, by=by).items():
        print(f"{key:<28} n={stats['count']:<7} total={stats['total']:.6f} "
              f"mean={stats['mean']:.6f} p50={stats['p50']:.6f} "
              f"p99={stats['p99']:.6f}")
    costs = observed_costs(spans)
    if costs:
        print("\n== observed wall-clock costs (realtime spans) ==")
        for name, stats in costs.items():
            print(f"{name:<28} n={stats['count']:<7} "
                  f"mean={stats['mean']:.6f}s p99={stats['p99']:.6f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
