"""Span sinks: where finished spans go.

Every sink consumes plain dicts (:meth:`repro.obs.span.Span.to_dict`),
so sinks compose freely and everything they hold is picklable:

* :class:`RingSink` — bounded in-memory ring, the default.  Keeps an
  absolute emit counter so the process shard backend can ship *new*
  spans in each state digest (:meth:`RingSink.since`).
* :class:`JsonlSink` — one JSON object per line, append-only file.
* :class:`RealtimeSink` — wrapper stamping the wall-clock emit time on
  every span (``"wall_emitted"``), so observed setup/fsync latencies can
  later feed back into sim :class:`~repro.flow.cost.CostModel` prices.
* :class:`TeeSink` — fan a span out to several sinks (ring + file).
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.timing import default_timer

__all__ = ["RingSink", "JsonlSink", "RealtimeSink", "TeeSink"]


class RingSink:
    """Bounded in-memory span store (drop-oldest)."""

    __slots__ = ("capacity", "_spans", "total", "dropped")

    def __init__(self, capacity: int = 65536):
        self.capacity = max(1, int(capacity))
        self._spans: deque = deque(maxlen=self.capacity)
        #: spans ever emitted (absolute; never decreases)
        self.total = 0
        #: spans the ring dropped to stay within capacity
        self.dropped = 0

    def emit(self, span: Dict[str, Any]) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        self.total += 1

    def export(self) -> List[Dict[str, Any]]:
        """Every retained span, oldest first."""
        return list(self._spans)

    def since(self, seq: int) -> Tuple[int, List[Dict[str, Any]]]:
        """Spans with absolute index >= *seq* still retained, plus the new seq.

        The digest protocol: a worker calls ``since(sent)`` each round and
        ships the delta.  Spans that fell off the ring between digests are
        simply gone (the ring bounds memory, not completeness).
        """
        first_retained = self.total - len(self._spans)
        skip = max(0, seq - first_retained)
        fresh = list(itertools.islice(self._spans, skip, None))
        return self.total, fresh

    def close(self) -> None:  # pragma: no cover - protocol completeness
        pass

    def __len__(self) -> int:
        return len(self._spans)


class JsonlSink:
    """Append spans to a file, one JSON object per line."""

    __slots__ = ("path", "_handle", "written")

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self.written = 0

    def emit(self, span: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(span, sort_keys=True,
                                      default=_json_fallback))
        self._handle.write("\n")
        self.written += 1

    def export(self) -> List[Dict[str, Any]]:
        """JSONL sinks retain nothing in memory."""
        return []

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None


class RealtimeSink:
    """Stamp the wall-clock emit time on every span, then forward it.

    Under the realtime backend the tracer already stamps ``wall_start`` /
    ``wall_end`` around each span; this wrapper additionally records when
    the span *reached the sink* — the number report's ``observed_costs``
    uses to turn measured setup/fsync latencies into sim prices.
    """

    __slots__ = ("inner", "timer")

    def __init__(self, inner, timer: Callable[[], float] = default_timer):
        self.inner = inner
        self.timer = timer

    def emit(self, span: Dict[str, Any]) -> None:
        span["wall_emitted"] = self.timer()
        self.inner.emit(span)

    def export(self) -> List[Dict[str, Any]]:
        return self.inner.export()

    def since(self, seq: int):
        return self.inner.since(seq)

    def close(self) -> None:
        self.inner.close()


class TeeSink:
    """Forward every span to several sinks (e.g. ring + JSONL file)."""

    __slots__ = ("sinks",)

    def __init__(self, sinks: Sequence):
        self.sinks = list(sinks)

    def emit(self, span: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(span)

    def export(self) -> List[Dict[str, Any]]:
        for sink in self.sinks:
            spans = sink.export()
            if spans:
                return spans
        return []

    def since(self, seq: int):
        for sink in self.sinks:
            if hasattr(sink, "since"):
                return sink.since(seq)
        return seq, []

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _json_fallback(value: Any) -> Any:
    """Last-resort JSON encoding for exotic attr values."""
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return repr(value)
