"""Observability: causal tracing and a metrics pipeline (`repro.obs`).

The paper's unit of work is the *itinerary* — an agent hopping site to
site with a briefcase and rear guards — and this package makes one
visible end to end:

* :mod:`repro.obs.span` — the span model.  Trace context travels in the
  agent's briefcase (``TRACE_ID`` / ``TRACE_PARENT`` folders), so
  causality survives batching envelopes, cross-shard handoffs on every
  backend (including pickled process pipes), and agent migration itself.
* :mod:`repro.obs.tracer` — per-kernel :class:`Tracer` plus the merged
  :class:`TracerView` the sharded facade exposes.
* :mod:`repro.obs.sinks` — pluggable span sinks: in-memory ring buffer
  (default, near-zero cost when tracing is off), JSONL file sink, and a
  wall-stamping realtime wrapper.
* :mod:`repro.obs.metrics` — counters / gauges / bounded histograms
  behind one ``register()`` seam; ``NetworkStats`` is re-exposed through
  it so shard digests, ``store_summary`` and benchmark JSON read from
  one place.
* :mod:`repro.obs.report` — turns a JSONL trace into per-itinerary hop
  timelines and per-(source, destination) / per-subsystem p50/p99
  breakdowns (also a CLI: ``python -m repro.obs.report trace.jsonl``).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsView
from repro.obs.sinks import JsonlSink, RealtimeSink, RingSink, TeeSink
from repro.obs.span import (Span, TRACE_ID_FOLDER, TRACE_PARENT_FOLDER,
                            infra_trace_id, span_id)
from repro.obs.tracer import SpanMirror, Tracer, TracerView

__all__ = [
    "Span", "TRACE_ID_FOLDER", "TRACE_PARENT_FOLDER", "span_id",
    "infra_trace_id",
    "Tracer", "TracerView", "SpanMirror",
    "RingSink", "JsonlSink", "RealtimeSink", "TeeSink",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsView",
]
