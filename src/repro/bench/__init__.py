"""Shared benchmark harness: metrics, tables, and the reusable workloads.

Every benchmark under ``benchmarks/`` builds its rows from these helpers so
that EXPERIMENTS.md and the benchmark output stay in the same format.
"""

from repro.bench.baselines import (DATA_SERVER_NAME, DATA_SINK_NAME, PULL_CABINET,
                                   install_data_servers, launch_pull_client, pull_summary)
from repro.bench.metrics import (bytes_human, coefficient_of_variation, jains_fairness,
                                 load_imbalance, percentile, ratio, speedup, summarize)
from repro.bench.report import Report, Table, run_stamp
from repro.bench.workloads import (CHURN_WORKER_NAME, DATA_CABINET,
                                   FANIN_COLLECTOR_NAME, FANIN_SENDER_NAME,
                                   GATHER_AGENT_NAME, POPULATION_WORKER_NAME,
                                   RECORDS_FOLDER,
                                   AgentChurnParams, AgentChurnResult,
                                   CourierFanInParams, CourierFanInResult,
                                   DataGatherParams, GatherResult,
                                   HighPopulationParams, HighPopulationResult,
                                   ItineraryParams, ItineraryResult,
                                   build_gather_kernel, execute_agent_churn,
                                   execute_high_population,
                                   populate_data_sites, run_agent_churn,
                                   run_agent_gather, run_client_server_gather,
                                   run_courier_fan_in, run_high_population,
                                   run_itinerary)

__all__ = [
    "summarize", "percentile", "ratio", "speedup", "jains_fairness",
    "coefficient_of_variation", "load_imbalance", "bytes_human",
    "Report", "Table", "run_stamp",
    "DataGatherParams", "GatherResult", "build_gather_kernel", "populate_data_sites",
    "run_agent_gather", "run_client_server_gather",
    "ItineraryParams", "ItineraryResult", "run_itinerary",
    "HighPopulationParams", "HighPopulationResult", "execute_high_population",
    "run_high_population",
    "AgentChurnParams", "AgentChurnResult", "execute_agent_churn", "run_agent_churn",
    "CourierFanInParams", "CourierFanInResult", "run_courier_fan_in",
    "DATA_CABINET", "RECORDS_FOLDER", "GATHER_AGENT_NAME", "POPULATION_WORKER_NAME",
    "CHURN_WORKER_NAME", "FANIN_COLLECTOR_NAME", "FANIN_SENDER_NAME",
    "install_data_servers", "launch_pull_client", "pull_summary",
    "DATA_SERVER_NAME", "DATA_SINK_NAME", "PULL_CABINET",
]
