"""Plain-text experiment tables, printed the way EXPERIMENTS.md records them.

The paper has no numeric tables of its own (it is a position paper), so the
reproduction defines its experiment tables in EXPERIMENTS.md and every
benchmark regenerates one of them through this tiny reporter: fixed-width
columns, one row per parameter point, printed to stdout so
``pytest benchmarks/ --benchmark-only -s`` shows the same rows the document
quotes.
"""

from __future__ import annotations

import os
import subprocess
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = ["Table", "Report", "run_stamp"]

Cell = Union[str, int, float]


def _git_sha() -> str:
    """The current commit's SHA, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_stamp(seed: Optional[int] = None, backend: Optional[Any] = None,
              **extra: Any) -> Dict[str, Any]:
    """Provenance stamp for benchmark JSON results.

    Every payload written to ``benchmarks/results/`` carries one of
    these, so perf trajectories are comparable across PRs: which commit
    produced the numbers, which seed drove the workload, and which
    execution backend(s) ran it.  *extra* keys ride along verbatim.
    """
    stamp: Dict[str, Any] = {"git_sha": _git_sha(), "seed": seed,
                             "backend": backend}
    stamp.update(extra)
    return stamp


def _format_cell(value: Cell) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


class Table:
    """One experiment table: a title, column headers, and rows."""

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.notes: List[str] = []

    def add_row(self, *cells: Cell, **named: Cell) -> None:
        """Append a row given positionally or by column name."""
        if cells and named:
            raise ValueError("pass cells positionally or by name, not both")
        if named:
            cells = tuple(named.get(column, "") for column in self.columns)
        if len(cells) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append([_format_cell(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        """Attach a free-text note printed under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[str]:
        """All values of one column (as formatted strings)."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """The table as fixed-width text."""
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(column.ljust(widths[index])
                           for index, column in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[index])
                                   for index, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return self.render()


class Report:
    """A collection of tables for one experiment, printable and saveable."""

    def __init__(self, experiment_id: str, description: str = ""):
        self.experiment_id = experiment_id
        self.description = description
        self.tables: List[Table] = []

    def table(self, title: str, columns: Sequence[str]) -> Table:
        """Create, register and return a new table."""
        table = Table(title, columns)
        self.tables.append(table)
        return table

    def render(self) -> str:
        """All tables of the experiment as one text block."""
        header = f"[{self.experiment_id}] {self.description}".rstrip()
        parts = [header, "#" * len(header)]
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        return "\n".join(parts)

    def print(self) -> None:
        """Print to stdout (what the benchmark harness does)."""
        print()
        print(self.render())

    def save(self, directory: str) -> str:
        """Write the report next to the benchmark outputs; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.experiment_id.lower()}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render() + "\n")
        return path

    def __str__(self) -> str:
        return self.render()
