"""Shared benchmark workloads: data gathering and itinerant hop sweeps.

Two workload families are used by several experiments:

* **data gathering** (E1, and the ablations): N sites each hold a dataset
  of which only a fraction is relevant; either a mobile agent filters at
  each site and carries the relevant records home, or a central client
  pulls every raw record over the network.  This is the distilled version
  of the StormCast bandwidth argument, with the selectivity and record size
  as explicit sweep parameters.
* **itineraries** (E7): an agent that simply hops through K sites carrying
  a payload of B bytes, used to measure per-transport migration cost.

Two more back the delivery-fabric / lifecycle-ledger benchmark (E10):

* **agent churn**: waves of short-lived agents carrying briefcase ballast,
  used to compare the lifecycle ledger's retention policies at steady state;
* **courier fan-in**: many sites courier folders to one collector hub, used
  to measure what per-destination batching saves in wire messages and
  simulated time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.folder import Folder
from repro.core.kernel import Kernel, KernelConfig
from repro.core.registry import register_behaviour
from repro.core.timing import default_timer
from repro.net.topology import (Topology, lan, ring, star, switched_fabric,
                                two_clusters)

__all__ = [
    "DataGatherParams", "GatherResult", "build_gather_kernel", "populate_data_sites",
    "run_agent_gather", "run_client_server_gather",
    "ItineraryParams", "ItineraryResult", "run_itinerary",
    "HighPopulationParams", "HighPopulationResult", "execute_high_population",
    "run_high_population",
    "AgentChurnParams", "AgentChurnResult", "execute_agent_churn", "run_agent_churn",
    "CourierFanInParams", "CourierFanInResult", "run_courier_fan_in",
    "MixedTrafficParams", "MixedTrafficResult", "run_mixed_traffic",
    "ShardedChurnParams", "ShardedChurnResult", "execute_sharded_churn",
    "run_sharded_churn",
    "DATA_CABINET", "RECORDS_FOLDER", "GATHER_AGENT_NAME", "POPULATION_WORKER_NAME",
    "CHURN_WORKER_NAME", "FANIN_COLLECTOR_NAME", "FANIN_SENDER_NAME",
    "MIXED_COLLECTOR_NAME", "MIXED_SENDER_NAME",
    "SHARD_COURIER_NAME", "SHARD_SINK_NAME", "SHARD_MAIL_CABINET",
]

#: cabinet each data site stores its records in
DATA_CABINET = "data"
#: folder holding the records
RECORDS_FOLDER = "RECORDS"
#: registered name of the gathering agent
GATHER_AGENT_NAME = "data_gatherer"
#: registered name of the high-population throughput worker
POPULATION_WORKER_NAME = "population_worker"
#: home-side cabinet where gather summaries land
GATHER_RESULTS_CABINET = "gather_results"


# ---------------------------------------------------------------------------
# data-gathering workload
# ---------------------------------------------------------------------------

@dataclass
class DataGatherParams:
    """One data-gathering configuration (the E1 sweep point)."""

    n_sites: int = 8
    records_per_site: int = 100
    record_bytes: int = 512
    #: fraction of records that are relevant to the query
    selectivity: float = 0.05
    transport: str = "tcp"
    topology: str = "star"           # "star" | "lan" | "two_clusters" | "ring"
    seed: int = 13
    home_name: str = "home"
    link_latency: float = 0.02
    link_bandwidth: float = 250_000.0
    run_until: float = 600.0

    def data_site_names(self) -> List[str]:
        """The data-holding site names for this configuration."""
        return [f"data{i:02d}" for i in range(self.n_sites)]


@dataclass
class GatherResult:
    """Outcome of one gathering run."""

    mode: str
    bytes_on_wire: int
    messages: int
    migrations: int
    duration: float
    relevant_found: int
    records_total: int
    sites_covered: int


def _build_topology(params: DataGatherParams) -> Topology:
    sites = params.data_site_names()
    if params.topology == "star":
        return star(params.home_name, sites, latency=params.link_latency,
                    bandwidth=params.link_bandwidth)
    if params.topology == "lan":
        return lan([params.home_name] + sites, latency=params.link_latency,
                   bandwidth=params.link_bandwidth)
    if params.topology == "ring":
        return ring([params.home_name] + sites, latency=params.link_latency,
                    bandwidth=params.link_bandwidth)
    if params.topology == "two_clusters":
        half = max(1, len(sites) // 2)
        return two_clusters([params.home_name] + sites[:half], sites[half:],
                            wan_bandwidth=params.link_bandwidth)
    raise ValueError(f"unknown topology kind {params.topology!r}")


def populate_data_sites(kernel: Kernel, site_names: Sequence[str], records_per_site: int,
                        record_bytes: int, selectivity: float, seed: int = 0) -> int:
    """Fill each site's data cabinet; returns the number of relevant records planted."""
    rng = random.Random(seed)
    relevant_total = 0
    for site_name in site_names:
        folder = kernel.site(site_name).cabinet(DATA_CABINET).folder(RECORDS_FOLDER,
                                                                     create=True)
        for index in range(records_per_site):
            relevant = rng.random() < selectivity
            relevant_total += 1 if relevant else 0
            folder.push({
                "id": f"{site_name}:{index}",
                "relevant": relevant,
                "value": rng.random(),
                "payload": b"\0" * record_bytes,
            })
    return relevant_total


def build_gather_kernel(params: DataGatherParams) -> Kernel:
    """A kernel with populated data sites for either gathering mode."""
    kernel = Kernel(_build_topology(params), transport=params.transport,
                    config=KernelConfig(rng_seed=params.seed))
    populate_data_sites(kernel, params.data_site_names(), params.records_per_site,
                        params.record_bytes, params.selectivity, seed=params.seed)
    return kernel


def gather_agent_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Visit every data site, keep only relevant records (stripped of payload), go home."""
    home = briefcase.get("HOME")
    kept = briefcase.folder("KEPT", create=True)

    if ctx.site_name != home or briefcase.get("PHASE") != "deliver":
        records = ctx.cabinet(DATA_CABINET).elements(RECORDS_FOLDER)
        for record in records:
            if isinstance(record, dict) and record.get("relevant"):
                # Relevant records are carried in full (the query genuinely
                # needs their payload); only the irrelevant ones are filtered
                # away.  This is what produces the crossover at selectivity
                # ~1.0: with nothing to filter, the agent re-ships the
                # accumulated data at every remaining hop.
                kept.push({"id": record["id"], "value": record["value"],
                           "payload": record.get("payload", b"")})
        briefcase.folder("VISITS", create=True).push(
            {"site": ctx.site_name, "records": len(records)})
        yield ctx.sleep(float(briefcase.get("FILTER_SECONDS", 0.005)))

    itinerary = briefcase.folder("SITES", create=True)
    if itinerary:
        next_site = itinerary.dequeue()
        yield ctx.jump(briefcase, next_site)
        return "moved"

    if ctx.site_name != home:
        briefcase.set("PHASE", "deliver")
        yield ctx.jump(briefcase, home)
        return "moving-home"

    visits = briefcase.folder("VISITS", create=True).elements()
    summary = {
        "relevant_found": len(kept),
        "records_total": sum(visit.get("records", 0) for visit in visits
                             if isinstance(visit, dict)),
        "sites_covered": max(0, len(visits) - 1),   # the home visit holds no data
        "completed_at": ctx.now,
    }
    ctx.cabinet(GATHER_RESULTS_CABINET).put("summaries", summary)
    yield ctx.sleep(0)
    return summary


register_behaviour(GATHER_AGENT_NAME, gather_agent_behaviour, replace=True)


def run_agent_gather(params: DataGatherParams) -> GatherResult:
    """Run the mobile-agent gathering pipeline for *params*."""
    kernel = build_gather_kernel(params)
    briefcase = Briefcase()
    briefcase.set("HOME", params.home_name)
    itinerary = briefcase.folder("SITES", create=True)
    for site in params.data_site_names():
        itinerary.enqueue(site)
    kernel.launch(params.home_name, GATHER_AGENT_NAME, briefcase)
    kernel.run(until=params.run_until)

    summaries = kernel.site(params.home_name).cabinet(GATHER_RESULTS_CABINET).elements(
        "summaries")
    summary = summaries[-1] if summaries else {}
    return GatherResult(
        mode="mobile-agent",
        bytes_on_wire=kernel.stats.bytes_sent,
        messages=kernel.stats.messages_sent,
        migrations=kernel.stats.migrations,
        duration=summary.get("completed_at", kernel.now),
        relevant_found=summary.get("relevant_found", 0),
        records_total=summary.get("records_total", 0),
        sites_covered=summary.get("sites_covered", 0),
    )


def run_client_server_gather(params: DataGatherParams) -> GatherResult:
    """Run the client-server baseline for *params* (raw records cross the wire)."""
    from repro.bench.baselines import install_data_servers, launch_pull_client, pull_summary
    kernel = build_gather_kernel(params)
    sites = params.data_site_names()
    install_data_servers(kernel, params.home_name, sites)
    launch_pull_client(kernel, params.home_name, sites)
    kernel.run(until=params.run_until)
    summary = pull_summary(kernel, params.home_name)
    return GatherResult(
        mode="client-server",
        bytes_on_wire=kernel.stats.bytes_sent,
        messages=kernel.stats.messages_sent,
        migrations=kernel.stats.migrations,
        duration=summary.get("completed_at", kernel.now),
        relevant_found=summary.get("relevant_found", 0),
        records_total=summary.get("records_received", 0),
        sites_covered=summary.get("sites_responded", 0),
    )


# ---------------------------------------------------------------------------
# high-population load-balancing workload — E9
# ---------------------------------------------------------------------------

@dataclass
class HighPopulationParams:
    """The E9 throughput scenario: thousands of short agents over many sites.

    A launcher balances each wave of agents onto the currently least-loaded
    sites (one ``site_load`` probe per site per placement, exactly what the
    scheduling monitors and brokers do), so per-site queries are the hot
    path: with the flat-ledger kernel each probe cost O(all agents ever
    launched) and the run went quadratic.
    """

    n_sites: int = 20
    n_agents: int = 10_000
    #: agents placed per wave before letting the event loop drain a little
    wave_size: int = 500
    #: simulated seconds of work each agent performs
    work_seconds: float = 0.05
    transport: str = "tcp"
    seed: int = 7
    link_latency: float = 0.005
    link_bandwidth: float = 1_250_000.0

    def site_names(self) -> List[str]:
        return [f"node{i:02d}" for i in range(max(2, self.n_sites))]


@dataclass
class HighPopulationResult:
    """Outcome of one high-population run."""

    agents_launched: int
    agents_completed: int
    sim_seconds: float
    #: largest resident population observed at any one site (wave sampling)
    peak_residents: int
    #: total site_load probes the balancer issued (the indexed hot path)
    load_queries: int
    #: launched-count spread between the busiest and idlest site
    placement_spread: int


def _population_worker(ctx: AgentContext, briefcase: Briefcase):
    """One unit of balanced work: probe the local load, work, finish."""
    briefcase.set("LOAD_AT_START", ctx.site_load())
    yield ctx.sleep(float(briefcase.get("WORK", 0.05)))
    return ctx.site_name


register_behaviour(POPULATION_WORKER_NAME, _population_worker, replace=True)


def execute_high_population(params: HighPopulationParams):
    """Run the scenario; returns ``(kernel, result)`` so callers can inspect
    the populated kernel (the E9 benchmark times queries against it)."""
    sites = params.site_names()
    kernel = Kernel(lan(sites, latency=params.link_latency,
                        bandwidth=params.link_bandwidth),
                    transport=params.transport,
                    config=KernelConfig(rng_seed=params.seed))
    placements = {name: 0 for name in sites}
    load_queries = 0
    peak_residents = 0
    launched = 0

    while launched < params.n_agents:
        wave = min(params.wave_size, params.n_agents - launched)
        requests = []
        wave_assigned = {name: 0 for name in sites}
        for _ in range(wave):
            # Least-loaded placement: one probe per site, like the brokers —
            # plus the broker's own-assignment correction so one wave does
            # not dog-pile a single site between two probes.
            best, best_load = sites[0], float("inf")
            for name in sites:
                load = kernel.site_load(name) + wave_assigned[name]
                load_queries += 1
                if load < best_load:
                    best, best_load = name, load
            briefcase = Briefcase()
            briefcase.set("WORK", params.work_seconds)
            requests.append((best, POPULATION_WORKER_NAME, briefcase))
            placements[best] += 1
            wave_assigned[best] += 1
        kernel.launch_many(requests)
        launched += wave
        # Start the wave so the index reflects the new residents...
        kernel.run(max_events=wave)
        peak_residents = max(peak_residents,
                             max(kernel.site(name).resident_count() for name in sites))
        # ...then let part of it drain before placing the next wave.
        kernel.run(until=kernel.now + params.work_seconds)

    kernel.run()
    result = HighPopulationResult(
        agents_launched=kernel.launched,
        agents_completed=kernel.completed,
        sim_seconds=kernel.now,
        peak_residents=peak_residents,
        load_queries=load_queries,
        placement_spread=max(placements.values()) - min(placements.values()),
    )
    return kernel, result


def run_high_population(params: HighPopulationParams) -> HighPopulationResult:
    """Run the high-population load-balancing scenario for *params*."""
    return execute_high_population(params)[1]


# ---------------------------------------------------------------------------
# agent churn workload — E10a (lifecycle ledger retention)
# ---------------------------------------------------------------------------

#: registered name of the churn worker
CHURN_WORKER_NAME = "churn_worker"


@dataclass
class AgentChurnParams:
    """The E10a retention scenario: sustained churn of short-lived agents.

    Each worker carries *ballast_bytes* of briefcase payload, which is
    exactly the state the ``keep-results`` retention policy sheds when the
    agent turns terminal.  Checkpoints after each wave record what the
    lifecycle ledger is actually retaining.
    """

    n_sites: int = 5
    n_agents: int = 50_000
    wave_size: int = 2_500
    work_seconds: float = 0.01
    ballast_bytes: int = 256
    retention: str = "keep-all"
    transport: str = "tcp"
    seed: int = 19
    #: execution backend: "sim" (deterministic, default) or "realtime"
    #: (repro.rt wall clock — work_seconds really elapse)
    backend: str = "sim"
    #: how many early agent ids to sample for post-run result_of checks
    sample_results: int = 50

    def site_names(self) -> List[str]:
        return [f"churn{i:02d}" for i in range(max(1, self.n_sites))]


@dataclass
class AgentChurnResult:
    """Outcome of one churn run under one retention policy."""

    retention: str
    agents_launched: int
    agents_completed: int
    sim_seconds: float
    #: per-wave snapshots of the ledger: launched so far, entries retained,
    #: full instances retained, compact records retained
    checkpoints: List[Dict[str, int]] = field(default_factory=list)
    #: agent ids sampled from the earliest wave (for result_of probes)
    sample_ids: List[str] = field(default_factory=list)
    #: final ledger composition
    retained_entries: int = 0
    retained_instances: int = 0
    retained_records: int = 0
    evicted: int = 0


def _churn_worker(ctx: AgentContext, briefcase: Briefcase):
    """One unit of churn: hold some ballast, work briefly, finish."""
    yield ctx.sleep(float(briefcase.get("WORK", 0.01)))
    return ctx.site_name


register_behaviour(CHURN_WORKER_NAME, _churn_worker, replace=True)


def execute_agent_churn(params: AgentChurnParams):
    """Run the churn scenario; returns ``(kernel, result)``."""
    sites = params.site_names()
    kernel = Kernel(lan(sites), transport=params.transport,
                    config=KernelConfig(rng_seed=params.seed,
                                        retention=params.retention,
                                        backend=params.backend))
    launched = 0
    checkpoints: List[Dict[str, int]] = []
    sample_ids: List[str] = []
    while launched < params.n_agents:
        wave = min(params.wave_size, params.n_agents - launched)
        requests = []
        for index in range(wave):
            briefcase = Briefcase()
            briefcase.set("WORK", params.work_seconds)
            briefcase.set("BALLAST", b"\0" * params.ballast_bytes)
            requests.append((sites[(launched + index) % len(sites)],
                             CHURN_WORKER_NAME, briefcase))
        ids = kernel.launch_many(requests)
        if not sample_ids:
            sample_ids = ids[:params.sample_results]
        launched += wave
        kernel.run()  # drain the wave: the churn is sequential by design
        kinds = kernel.table.ledger_entry_kinds()
        checkpoints.append({
            "launched": kernel.launched,
            "retained": len(kernel.table),
            "instances": kinds["instances"],
            "records": kinds["records"],
        })
    kinds = kernel.table.ledger_entry_kinds()
    result = AgentChurnResult(
        retention=kernel.table.retention.name,
        agents_launched=kernel.launched,
        agents_completed=kernel.completed,
        sim_seconds=kernel.now,
        checkpoints=checkpoints,
        sample_ids=sample_ids,
        retained_entries=len(kernel.table),
        retained_instances=kinds["instances"],
        retained_records=kinds["records"],
        evicted=kernel.table.evicted,
    )
    return kernel, result


def run_agent_churn(params: AgentChurnParams) -> AgentChurnResult:
    """Run the churn scenario for *params* (closing the kernel)."""
    kernel, result = execute_agent_churn(params)
    kernel.close()
    return result


# ---------------------------------------------------------------------------
# courier fan-in workload — E10b (delivery-fabric batching)
# ---------------------------------------------------------------------------

#: name the collector contact runs under at the hub
FANIN_COLLECTOR_NAME = "fanin_collector"
#: registered name of the per-site sender
FANIN_SENDER_NAME = "fanin_sender"
#: hub cabinet where collected folders are filed
FANIN_CABINET = "fanin"


@dataclass
class CourierFanInParams:
    """The E10b batching scenario: N sites courier folders into one hub.

    With ``batch_window == 0`` every folder is one wire message (the
    pre-fabric behaviour); with a positive window, each sender site's
    folders coalesce per flush window into one batched message.
    ``serialize_setup`` applies the source-serialized setup cost model (one
    rsh fork / handshake at a time per site) under which batching pays in
    simulated time as well as in messages and header bytes.
    """

    n_senders: int = 20
    deliveries_per_sender: int = 50
    payload_bytes: int = 200
    batch_window: float = 0.0
    #: adaptive-flush knobs (0 = disabled): flush early at this many
    #: messages / payload bytes, and cap a sliding window at this deadline
    batch_max_messages: int = 0
    batch_max_bytes: int = 0
    batch_deadline: float = 0.0
    serialize_setup: bool = True
    transport: str = "rsh"
    hub_name: str = "hub"
    seed: int = 23
    #: execution backend: "sim" (deterministic, default) or "realtime"
    #: (repro.rt wall clock — link latencies and setup delays really
    #: elapse; sim_seconds then reports elapsed wall time)
    backend: str = "sim"
    link_latency: float = 0.01
    link_bandwidth: float = 250_000.0

    def sender_names(self) -> List[str]:
        return [f"sender{i:02d}" for i in range(max(1, self.n_senders))]


@dataclass
class CourierFanInResult:
    """Outcome of one fan-in run."""

    batch_window: float
    deliveries_requested: int
    folders_received: int
    wire_messages: int
    batches: int
    batched_messages: int
    bytes_on_wire: int
    header_bytes_saved: int
    sim_seconds: float
    #: flushes fired by a size/byte threshold or deadline, not the window
    early_flushes: int = 0
    #: which execution backend produced this outcome
    backend: str = "sim"
    #: real seconds spent inside kernel.run()
    wall_seconds: float = 0.0
    #: events the loop executed during the run
    events: int = 0
    #: the kernel's ledger counters (logical-outcome parity checks)
    counters: Dict[str, int] = field(default_factory=dict)


def _fanin_collector(ctx: AgentContext, briefcase: Briefcase):
    """Hub-side contact: file the delivered report into the fan-in cabinet."""
    payload_name = briefcase.get("PAYLOAD_NAME")
    elements = (briefcase.folder(payload_name).elements()
                if payload_name and briefcase.has(payload_name) else [])
    ctx.cabinet(FANIN_CABINET).put("received", {
        "from": briefcase.get("SENDER_SITE"),
        "reports": len(elements),
        "at": ctx.now,
    })
    yield ctx.sleep(0)
    return len(elements)


def _fanin_sender(ctx: AgentContext, briefcase: Briefcase):
    """Courier *COUNT* report folders to the hub, one meet per folder."""
    hub = briefcase.get("HUB")
    count = int(briefcase.get("COUNT", 1))
    size = int(briefcase.get("BYTES", 0))
    accepted = 0
    for index in range(count):
        folder = Folder("REPORT", [{
            "from": ctx.site_name,
            "seq": index,
            "payload": b"\0" * size,
        }])
        result = yield ctx.send_folder(folder, hub, FANIN_COLLECTOR_NAME)
        if result is not None and result.value:
            accepted += 1
    return accepted


register_behaviour(FANIN_SENDER_NAME, _fanin_sender, replace=True)


def run_courier_fan_in(params: CourierFanInParams) -> CourierFanInResult:
    """Run the courier fan-in scenario for *params*."""
    senders = params.sender_names()
    topology = star(params.hub_name, senders, latency=params.link_latency,
                    bandwidth=params.link_bandwidth)
    with Kernel(topology, transport=params.transport,
                config=KernelConfig(
                    rng_seed=params.seed,
                    backend=params.backend,
                    delivery_batch_window=params.batch_window,
                    delivery_batch_max_messages=params.batch_max_messages,
                    delivery_batch_max_bytes=params.batch_max_bytes,
                    delivery_batch_deadline=params.batch_deadline,
                    serialize_transport_setup=params.serialize_setup)) as kernel:
        kernel.install_agent(params.hub_name, FANIN_COLLECTOR_NAME,
                             _fanin_collector)
        for site in senders:
            briefcase = Briefcase()
            briefcase.set("HUB", params.hub_name)
            briefcase.set("COUNT", params.deliveries_per_sender)
            briefcase.set("BYTES", params.payload_bytes)
            kernel.launch(site, FANIN_SENDER_NAME, briefcase)
        # To quiescence: the pending-outbox flush events keep the loop alive
        # until the last batch has been shipped and unbatched.  Under
        # backend="realtime" this blocks for real wall time.
        start = default_timer()
        events = kernel.run()
        wall = default_timer() - start

        received = kernel.site(params.hub_name).cabinet(
            FANIN_CABINET).elements("received")
        return CourierFanInResult(
            batch_window=params.batch_window,
            deliveries_requested=params.n_senders * params.deliveries_per_sender,
            folders_received=len(received),
            wire_messages=kernel.stats.messages_sent,
            batches=kernel.stats.batches,
            batched_messages=kernel.stats.batched_messages,
            bytes_on_wire=kernel.stats.bytes_sent,
            header_bytes_saved=kernel.stats.header_bytes_saved,
            sim_seconds=kernel.now,
            early_flushes=kernel.stats.early_flushes,
            backend=params.backend,
            wall_seconds=wall,
            events=events,
            counters=kernel.counters(),
        )


# ---------------------------------------------------------------------------
# itinerary (hop sweep) workload — E7
# ---------------------------------------------------------------------------

@dataclass
class ItineraryParams:
    """One transport-sweep point: hop K sites carrying B bytes."""

    transport: str = "tcp"
    hops: int = 8
    payload_bytes: int = 1024
    n_sites: int = 9
    seed: int = 21
    link_latency: float = 0.01
    link_bandwidth: float = 1_250_000.0
    run_until: float = 600.0


@dataclass
class ItineraryResult:
    """Outcome of one itinerary run."""

    transport: str
    hops_completed: int
    duration: float
    bytes_on_wire: int
    migration_bytes: int
    mean_hop_time: float


def _itinerant_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Hop along the TOUR folder, recording hop timestamps in the briefcase."""
    briefcase.folder("HOP_TIMES", create=True).push(ctx.now)
    tour = briefcase.folder("TOUR", create=True)
    if tour:
        next_site = tour.dequeue()
        yield ctx.jump(briefcase, next_site)
        return "moved"
    hop_times = briefcase.folder("HOP_TIMES", create=True).elements()
    ctx.cabinet("itinerary").put("runs", {
        "hops": max(0, len(hop_times) - 1),
        "started_at": hop_times[0] if hop_times else 0.0,
        "completed_at": ctx.now,
        "hop_times": hop_times,
    })
    yield ctx.sleep(0)
    return "completed"


register_behaviour("itinerant", _itinerant_behaviour, replace=True)


def run_itinerary(params: ItineraryParams) -> ItineraryResult:
    """Run one hop sweep over a LAN of ``n_sites`` with the requested transport."""
    site_names = [f"site{i:02d}" for i in range(max(2, params.n_sites))]
    kernel = Kernel(lan(site_names, latency=params.link_latency,
                        bandwidth=params.link_bandwidth),
                    transport=params.transport,
                    config=KernelConfig(rng_seed=params.seed))
    rng = random.Random(params.seed)
    tour = [site_names[(index + 1) % len(site_names)] for index in range(params.hops)]
    briefcase = Briefcase()
    briefcase.set("PAYLOAD", b"\0" * params.payload_bytes)
    tour_folder = briefcase.folder("TOUR", create=True)
    for site in tour:
        tour_folder.enqueue(site)
    kernel.launch(site_names[0], "itinerant", briefcase)
    kernel.run(until=params.run_until)

    final_site = tour[-1] if tour else site_names[0]
    runs = kernel.site(final_site).cabinet("itinerary").elements("runs")
    run = runs[-1] if runs else {}
    hop_times = run.get("hop_times", [])
    hop_deltas = [after - before for before, after in zip(hop_times, hop_times[1:])]
    return ItineraryResult(
        transport=params.transport,
        hops_completed=run.get("hops", 0),
        duration=run.get("completed_at", kernel.now) - (run.get("started_at", 0.0)),
        bytes_on_wire=kernel.stats.bytes_sent,
        migration_bytes=kernel.stats.migration_bytes,
        mean_hop_time=(sum(hop_deltas) / len(hop_deltas)) if hop_deltas else 0.0,
    )


# ---------------------------------------------------------------------------
# mixed hot/cold traffic workload — E13a (adaptive per-destination windows)
# ---------------------------------------------------------------------------

#: name the latency-measuring collector contact runs under at the hub
MIXED_COLLECTOR_NAME = "mixed_collector"
#: registered name of the paced per-site sender
MIXED_SENDER_NAME = "mixed_sender"
#: hub cabinet where per-folder delivery latencies are filed
MIXED_CABINET = "mixed_fanin"


@dataclass
class MixedTrafficParams:
    """The E13a flow-control scenario: one hot pair plus several trickles.

    Hot senders fire folders at the hub nearly back to back; trickle
    senders space theirs far apart.  No single fixed flush window suits
    both: a tight one leaves the trickle folders unbatched (many wire
    messages), a wide one sits on the hot pair's full batches (high
    delivery latency).  With ``flow_window_max > 0`` the fabric sizes each
    pair's window from its observed rate instead
    (:class:`repro.flow.FlowController`), which is what this workload
    measures against the fixed sweep.
    """

    n_hot: int = 1
    hot_deliveries: int = 60
    hot_gap: float = 0.002
    n_trickle: int = 6
    trickle_deliveries: int = 8
    trickle_gap: float = 0.35
    payload_bytes: int = 200
    #: the fabric's base window (0 = fabric off); in adaptive mode this is
    #: only the seed for pairs with no traffic history
    batch_window: float = 0.0
    #: adaptive per-destination window bounds (window_max > 0 = adaptive on)
    flow_window_min: float = 0.0
    flow_window_max: float = 0.0
    flow_target_batch: int = 8
    transport: str = "tcp"
    hub_name: str = "hub"
    seed: int = 31
    link_latency: float = 0.01
    link_bandwidth: float = 250_000.0

    def hot_names(self) -> List[str]:
        return [f"hot{i:02d}" for i in range(max(0, self.n_hot))]

    def trickle_names(self) -> List[str]:
        return [f"cold{i:02d}" for i in range(max(0, self.n_trickle))]


@dataclass
class MixedTrafficResult:
    """Outcome of one mixed-traffic run."""

    folders_expected: int
    folders_received: int
    wire_messages: int
    batches: int
    batched_messages: int
    bytes_on_wire: int
    #: per-folder queue-to-contact delivery latency, simulated seconds
    p50_latency: float
    mean_latency: float
    sim_seconds: float
    #: per-pair window/rate telemetry ("src->dst"), empty when not adaptive
    flow_windows: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _mixed_collector(ctx: AgentContext, briefcase: Briefcase):
    """Hub-side contact: file each folder's queue-to-arrival latency."""
    payload_name = briefcase.get("PAYLOAD_NAME")
    elements = (briefcase.folder(payload_name).elements()
                if payload_name and briefcase.has(payload_name) else [])
    cabinet = ctx.cabinet(MIXED_CABINET)
    for element in elements:
        if isinstance(element, dict) and "queued_at" in element:
            cabinet.put("latencies", ctx.now - float(element["queued_at"]))
    yield ctx.sleep(0)
    return len(elements)


def _mixed_sender(ctx: AgentContext, briefcase: Briefcase):
    """Courier *COUNT* stamped folders to the hub, sleeping *GAP* between."""
    hub = briefcase.get("HUB")
    count = int(briefcase.get("COUNT", 1))
    gap = float(briefcase.get("GAP", 0.0))
    size = int(briefcase.get("BYTES", 0))
    accepted = 0
    for index in range(count):
        folder = Folder("REPORT", [{
            "from": ctx.site_name,
            "seq": index,
            "queued_at": ctx.now,
            "payload": b"\0" * size,
        }])
        result = yield ctx.send_folder(folder, hub, MIXED_COLLECTOR_NAME)
        if result is not None and result.value:
            accepted += 1
        if gap > 0:
            yield ctx.sleep(gap)
    return accepted


register_behaviour(MIXED_SENDER_NAME, _mixed_sender, replace=True)


def run_mixed_traffic(params: MixedTrafficParams) -> MixedTrafficResult:
    """Run the mixed hot/cold fan-in scenario for *params*."""
    senders = params.hot_names() + params.trickle_names()
    topology = star(params.hub_name, senders, latency=params.link_latency,
                    bandwidth=params.link_bandwidth)
    kernel = Kernel(topology, transport=params.transport,
                    config=KernelConfig(
                        rng_seed=params.seed,
                        delivery_batch_window=params.batch_window,
                        flow_window_min=params.flow_window_min,
                        flow_window_max=params.flow_window_max,
                        flow_target_batch=params.flow_target_batch))
    kernel.install_agent(params.hub_name, MIXED_COLLECTOR_NAME, _mixed_collector)
    for site, count, gap in (
            [(name, params.hot_deliveries, params.hot_gap)
             for name in params.hot_names()]
            + [(name, params.trickle_deliveries, params.trickle_gap)
               for name in params.trickle_names()]):
        briefcase = Briefcase()
        briefcase.set("HUB", params.hub_name)
        briefcase.set("COUNT", count)
        briefcase.set("GAP", gap)
        briefcase.set("BYTES", params.payload_bytes)
        kernel.launch(site, MIXED_SENDER_NAME, briefcase)
    kernel.run()

    latencies = sorted(
        float(value) for value in
        kernel.site(params.hub_name).cabinet(MIXED_CABINET).elements("latencies"))
    expected = (params.n_hot * params.hot_deliveries
                + params.n_trickle * params.trickle_deliveries)
    p50 = latencies[len(latencies) // 2] if latencies else 0.0
    return MixedTrafficResult(
        folders_expected=expected,
        folders_received=len(latencies),
        wire_messages=kernel.stats.messages_sent,
        batches=kernel.stats.batches,
        batched_messages=kernel.stats.batched_messages,
        bytes_on_wire=kernel.stats.bytes_sent,
        p50_latency=p50,
        mean_latency=(sum(latencies) / len(latencies)) if latencies else 0.0,
        sim_seconds=kernel.now,
        flow_windows=kernel.stats.flow_snapshot(),
    )


# ---------------------------------------------------------------------------
# sharded churn workload — E14 (multi-kernel scaling)
# ---------------------------------------------------------------------------

#: registered name of the churn-plus-courier worker
SHARD_COURIER_NAME = "shard_courier"
#: name the report sink contact runs under at every site
SHARD_SINK_NAME = "shard_sink"
#: cabinet the sink files received reports into
SHARD_MAIL_CABINET = "shardmail"


@dataclass
class ShardedChurnParams:
    """The E14 scaling scenario: site-spanning churn on a large LAN.

    Waves of short-lived workers each do local work and then courier one
    report folder to a peer site half-way around the site list — under
    CRC-32 placement that peer usually lives on another shard, so the
    workload exercises the cross-shard handoff path, not just independent
    per-shard progress.  ``shards=None`` leaves :class:`KernelConfig` at
    its defaults (the honest unsharded baseline); any integer sets
    ``KernelConfig(shards=N)``.
    """

    n_sites: int = 200
    n_agents: int = 2_000
    wave_size: int = 500
    work_seconds: float = 0.01
    payload_bytes: int = 128
    shards: Optional[int] = None
    transport: str = "tcp"
    seed: int = 41
    #: shard execution backend ("inproc", "thread", "process"); inert when
    #: ``shards`` is None (E15 sweeps this, E14 keeps the inproc default)
    backend: str = "inproc"
    #: "lan" (full mesh — quadratic edges, fine to ~200 sites) or "fabric"
    #: (:func:`~repro.net.topology.switched_fabric` — the scaled E15 arm)
    topology: str = "lan"
    hosts_per_switch: int = 50
    #: observability knobs (E17 measures their overhead on this workload):
    #: obs_enabled turns the repro.obs tracing layer on, obs_sample is the
    #: per-trace sampling rate handed to KernelConfig
    obs_enabled: bool = False
    obs_sample: float = 1.0

    def site_names(self) -> List[str]:
        return [f"s{i:03d}" for i in range(max(1, self.n_sites))]

    def build_topology(self) -> Topology:
        sites = self.site_names()
        if self.topology == "fabric":
            return switched_fabric(sites,
                                   hosts_per_switch=self.hosts_per_switch)
        if self.topology == "lan":
            return lan(sites)
        raise ValueError(f"unknown topology {self.topology!r}; "
                         f"expected 'lan' or 'fabric'")


@dataclass
class ShardedChurnResult:
    """Outcome plus the parallel-host throughput accounting of one run."""

    shards: Optional[int]
    agents_launched: int
    agents_completed: int
    events: int
    sim_seconds: float
    #: the scaling denominator: slowest shard's busy wall-time (classic
    #: kernels: the whole run's wall-time — one host does everything)
    busy_seconds: float
    total_busy_seconds: float
    sync_seconds: float
    rounds: int
    handoffs: int
    late_arrivals: int
    counters: Dict[str, int] = field(default_factory=dict)
    #: which execution backend ran the shard bursts ("inproc" when unsharded)
    backend: str = "inproc"
    #: real end-to-end wall-clock of the run() calls — the E15 metric the
    #: parallel-host *model* (busy_seconds) is finally measured against
    wall_seconds: float = 0.0
    #: per-round coordination overhead (round wall-time minus slowest burst)
    overhead_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Aggregate events per busy second under the parallel-host model."""
        return self.events / self.busy_seconds if self.busy_seconds > 0 else 0.0

    @property
    def wall_throughput(self) -> float:
        """Events per real wall-clock second — what E15 actually races."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _shard_sink(ctx: AgentContext, briefcase: Briefcase):
    """Per-site contact: file the couriered report into the mail cabinet."""
    payload_name = briefcase.get("PAYLOAD_NAME")
    elements = (briefcase.folder(payload_name).elements()
                if payload_name and briefcase.has(payload_name) else [])
    ctx.cabinet(SHARD_MAIL_CABINET).put("received", {
        "from": briefcase.get("SENDER_SITE"),
        "reports": len(elements),
        "at": ctx.now,
    })
    yield ctx.sleep(0)
    return len(elements)


def _shard_courier(ctx: AgentContext, briefcase: Briefcase):
    """One unit of churn: work locally, then courier a report to the peer."""
    yield ctx.sleep(float(briefcase.get("WORK", 0.01)))
    folder = Folder("REPORT", [{
        "from": ctx.site_name,
        "payload": b"\0" * int(briefcase.get("BYTES", 0)),
    }])
    yield ctx.send_folder(folder, briefcase.get("PEER"), SHARD_SINK_NAME)
    return ctx.site_name


register_behaviour(SHARD_COURIER_NAME, _shard_courier, replace=True)


def execute_sharded_churn(params: ShardedChurnParams):
    """Run the sharded churn scenario; returns ``(kernel, result)``."""
    sites = params.site_names()
    overrides = {} if params.shards is None else {
        "shards": params.shards, "shard_backend": params.backend}
    kernel = Kernel(params.build_topology(), transport=params.transport,
                    config=KernelConfig(rng_seed=params.seed,
                                        obs_enabled=params.obs_enabled,
                                        obs_sample=params.obs_sample,
                                        **overrides))
    kernel.install_agent(None, SHARD_SINK_NAME, _shard_sink)
    offset = max(1, len(sites) // 2 + 1)
    launched = 0
    events = 0
    wall = 0.0
    while launched < params.n_agents:
        wave = min(params.wave_size, params.n_agents - launched)
        requests = []
        for index in range(wave):
            slot = launched + index
            briefcase = Briefcase()
            briefcase.set("WORK", params.work_seconds)
            briefcase.set("PEER", sites[(slot + offset) % len(sites)])
            briefcase.set("BYTES", params.payload_bytes)
            requests.append((sites[slot % len(sites)], SHARD_COURIER_NAME,
                             briefcase))
        kernel.launch_many(requests)
        launched += wave
        start = default_timer()
        events += kernel.run()  # drain the wave
        wall += default_timer() - start
    shard_set = kernel.shard_set
    if shard_set is not None:
        summary = shard_set.busy_summary()
        busy = summary["max_busy"]
        total_busy = summary["total_busy"]
        sync_seconds = summary["sync_seconds"]
        overhead_seconds = summary["overhead_seconds"]
        rounds = shard_set.rounds
    else:
        busy = total_busy = wall
        sync_seconds = 0.0
        overhead_seconds = 0.0
        rounds = 0
    snapshot = kernel.stats.snapshot()
    result = ShardedChurnResult(
        shards=params.shards,
        agents_launched=kernel.launched,
        agents_completed=kernel.completed,
        events=events,
        sim_seconds=kernel.now,
        busy_seconds=busy,
        total_busy_seconds=total_busy,
        sync_seconds=sync_seconds,
        rounds=rounds,
        handoffs=snapshot["shard_handoffs"],
        late_arrivals=snapshot["shard_late_arrivals"],
        counters=kernel.counters(),
        backend=params.backend if params.shards is not None else "inproc",
        wall_seconds=wall,
        overhead_seconds=overhead_seconds,
    )
    return kernel, result


def run_sharded_churn(params: ShardedChurnParams) -> ShardedChurnResult:
    """Run the sharded churn scenario for *params* (releasing the kernel)."""
    kernel, result = execute_sharded_churn(params)
    kernel.close()
    return result
