"""Client-server baselines for the gathering workloads (paper section 1's contrast).

The paper's framing: "when an application is built using a client and
servers, raw data may have to be sent from one site to another".  These
agents implement that architecture on top of the same kernel so that the
comparison with the mobile agent is apples-to-apples: same topology, same
transport, same data, different placement of the filtering computation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.workloads import DATA_CABINET, RECORDS_FOLDER
from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.folder import Folder
from repro.core.kernel import Kernel

__all__ = ["install_data_servers", "launch_pull_client", "pull_summary",
           "DATA_SERVER_NAME", "DATA_SINK_NAME", "PULL_CABINET"]

#: the per-data-site server answering pull requests
DATA_SERVER_NAME = "data_server"
#: the home-side sink accumulating raw responses
DATA_SINK_NAME = "data_sink"
#: home-side cabinet holding pulled records and the run summary
PULL_CABINET = "pull"


def data_server_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Ship every raw record of this site back to the requesting home site."""
    request = briefcase.get("REQUEST")
    if not isinstance(request, dict) or "home" not in request:
        yield ctx.end_meet(0)
        return 0
    records = ctx.cabinet(DATA_CABINET).elements(RECORDS_FOLDER)
    response = Folder("RAW_RECORDS", records)
    response.push({"__origin__": ctx.site_name, "count": len(records)})
    yield ctx.send_folder(response, request["home"], DATA_SINK_NAME)
    yield ctx.end_meet(len(records))
    return len(records)


def data_sink_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Bank arriving raw records at the home site."""
    cabinet = ctx.cabinet(PULL_CABINET)
    stored = 0
    if briefcase.has("RAW_RECORDS"):
        for record in briefcase.folder("RAW_RECORDS").elements():
            if isinstance(record, dict) and "__origin__" in record:
                cabinet.put("responded", record["__origin__"])
            else:
                cabinet.put("raw", record)
                stored += 1
    yield ctx.end_meet(stored)
    return stored


def install_data_servers(kernel: Kernel, home: str, data_sites: Sequence[str]) -> None:
    """Install the pull-architecture agents (servers at data sites, sink at home)."""
    kernel.install_agent(home, DATA_SINK_NAME, data_sink_behaviour, replace=True)
    for site in data_sites:
        kernel.install_agent(site, DATA_SERVER_NAME, data_server_behaviour, replace=True)


def launch_pull_client(kernel: Kernel, home: str, data_sites: Sequence[str],
                       poll_interval: float = 0.1, max_polls: int = 300,
                       delay: float = 0.0) -> str:
    """Launch the home-side client that requests everything and filters centrally."""
    briefcase = Briefcase()
    briefcase.set("HOME", home)
    sites_folder = briefcase.folder("DATA_SITES", create=True)
    for site in data_sites:
        sites_folder.enqueue(site)
    briefcase.set("POLL_INTERVAL", poll_interval)
    briefcase.set("MAX_POLLS", max_polls)
    return kernel.launch(home, _pull_client_behaviour, briefcase, delay=delay)


def _pull_client_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Request, wait for responses, filter the relevant records centrally."""
    home = briefcase.get("HOME", ctx.site_name)
    data_sites: List[str] = list(briefcase.folder("DATA_SITES", create=True).elements())
    poll_interval = float(briefcase.get("POLL_INTERVAL", 0.1))
    max_polls = int(briefcase.get("MAX_POLLS", 300))
    cabinet = ctx.cabinet(PULL_CABINET)

    for site in data_sites:
        request = Folder("REQUEST", [{"home": home, "requested_at": ctx.now}])
        yield ctx.send_folder(request, site, DATA_SERVER_NAME)

    polls = 0
    while polls < max_polls:
        responded = set(cabinet.elements("responded"))
        if all(site in responded for site in data_sites):
            break
        polls += 1
        yield ctx.sleep(poll_interval)

    raw = cabinet.elements("raw")
    relevant = [record for record in raw
                if isinstance(record, dict) and record.get("relevant")]
    summary = {
        "sites_responded": len(set(cabinet.elements("responded"))),
        "sites_requested": len(data_sites),
        "records_received": len(raw),
        "relevant_found": len(relevant),
        "polls": polls,
        "completed_at": ctx.now,
    }
    cabinet.put("summary", summary)
    return summary


def pull_summary(kernel: Kernel, home: str) -> Dict[str, object]:
    """The last pull-client summary recorded at *home* (empty dict if none)."""
    summaries = kernel.site(home).cabinet(PULL_CABINET).elements("summary")
    return summaries[-1] if summaries else {}
