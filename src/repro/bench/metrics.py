"""Metric helpers shared by the benchmark harness and EXPERIMENTS.md tables.

Everything here is plain arithmetic over the counters the kernel and the
network statistics expose — kept separate so benchmark scripts stay focused
on *what* they measure, and the arithmetic is unit-testable.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, Sequence

__all__ = [
    "summarize", "percentile", "ratio", "speedup",
    "jains_fairness", "coefficient_of_variation", "load_imbalance",
    "bytes_human",
]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p95 / min / max / stdev of a sample (empty-safe)."""
    data = [float(value) for value in values]
    if not data:
        return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0,
                "min": 0.0, "max": 0.0, "stdev": 0.0}
    return {
        "count": len(data),
        "mean": statistics.fmean(data),
        "median": statistics.median(data),
        "p95": percentile(data, 95.0),
        "min": min(data),
        "max": max(data),
        "stdev": statistics.pstdev(data) if len(data) > 1 else 0.0,
    }


def percentile(values: Sequence[float], pct: float) -> float:
    """The *pct*-th percentile (linear interpolation between closest ranks)."""
    data = sorted(float(value) for value in values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    if not 0.0 <= pct <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    rank = (pct / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    # Equal neighbours need no interpolation; skipping it also avoids
    # rounding artefacts with denormal values, keeping percentiles monotone.
    if low == high or data[low] == data[high]:
        return data[low]
    weight = rank - low
    return data[low] * (1.0 - weight) + data[high] * weight


def ratio(numerator: float, denominator: float) -> float:
    """A safe division: 0/0 is 1.0 (no difference), x/0 is inf."""
    if denominator == 0:
        return 1.0 if numerator == 0 else math.inf
    return numerator / denominator


def speedup(baseline: float, candidate: float) -> float:
    """How many times cheaper/faster *candidate* is than *baseline*."""
    return ratio(baseline, candidate)


def jains_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index of a load distribution (1.0 = perfectly even).

    The standard metric for "how balanced is the assignment" — experiment
    E5 reports it per scheduling policy.
    """
    data = [float(value) for value in values]
    if not data:
        return 1.0
    scale = max(abs(value) for value in data)
    if scale == 0:
        return 1.0
    # The index is scale-invariant; normalising keeps the squares out of
    # the subnormal range, where underflow can push the ratio above 1.
    data = [value / scale for value in data]
    total = sum(data)
    squares = sum(value * value for value in data)
    if squares == 0:
        return 1.0
    return (total * total) / (len(data) * squares)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation normalised by the mean (0 = perfectly even)."""
    data = [float(value) for value in values]
    if not data:
        return 0.0
    mean = statistics.fmean(data)
    if mean == 0:
        return 0.0
    return statistics.pstdev(data) / mean


def load_imbalance(per_server_counts: Dict[str, float]) -> float:
    """max/mean imbalance of a per-server job count table (1.0 = even)."""
    counts = list(per_server_counts.values())
    if not counts:
        return 1.0
    mean = statistics.fmean(counts)
    if mean == 0:
        return 1.0
    return max(counts) / mean


def bytes_human(count: float) -> str:
    """Readable byte count for report rows (1.5 KB, 3.2 MB, ...)."""
    size = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(size) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.1f} TB"
