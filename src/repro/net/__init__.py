"""Network substrate: simulation clock, topology, transports, failure injection.

The 1995 TACOMA prototype ran on real workstations; this package is the
simulated replacement (see DESIGN.md section 1 for the substitution
rationale).  Everything above it — kernel, system agents, applications —
only sees :class:`~repro.net.transport.Transport` and the event loop, so
swapping in a real network would not change the agent-facing API.
"""

from repro.net.failures import FailureSchedule, RandomCrasher
from repro.net.horus import GroupView, HorusTransport, ProcessGroup
from repro.net.message import Message, MessageKind
from repro.net.rsh import RshTransport
from repro.net.simclock import Event, EventLoop, SimClock
from repro.net.stats import LinkStats, NetworkStats
from repro.net.tcp import TcpTransport
from repro.net.topology import (LinkSpec, Topology, lan, random_topology, ring, star,
                                switched_fabric, two_clusters)
from repro.net.transport import Transport

__all__ = [
    "Event", "EventLoop", "SimClock",
    "Message", "MessageKind",
    "LinkStats", "NetworkStats",
    "LinkSpec", "Topology", "lan", "two_clusters", "ring", "star", "random_topology",
    "switched_fabric",
    "Transport", "RshTransport", "TcpTransport",
    "HorusTransport", "ProcessGroup", "GroupView",
    "FailureSchedule", "RandomCrasher",
]
