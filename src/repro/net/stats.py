"""Network and kernel statistics counters.

Every experiment in EXPERIMENTS.md reads its numbers from a
:class:`NetworkStats` (bytes, messages, hops) or from the kernel's agent
ledger, so the counters live in one small, well-tested module.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["NetworkStats", "LinkStats"]


@dataclass
class LinkStats:
    """Per-link counters."""

    messages: int = 0
    bytes: int = 0
    drops: int = 0


@dataclass
class NetworkStats:
    """Aggregate counters for everything that crossed the simulated network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    migrations: int = 0
    migration_bytes: int = 0
    #: wire messages that were delivery-fabric batch envelopes
    batches: int = 0
    #: logical messages coalesced into those envelopes
    batched_messages: int = 0
    #: header bytes the fabric avoided (one envelope header replaces N)
    header_bytes_saved: int = 0
    #: delivery-fabric outbox flushes by trigger: "window" (flush timer),
    #: "size" / "bytes" (threshold early flush), "deadline" (hard-deadline
    #: override of a sliding window), "reconfigure", "partition", "manual"
    flush_causes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    per_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    per_kind_bytes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    per_link: Dict[Tuple[str, str], LinkStats] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)

    # -- recording -----------------------------------------------------------

    def record_send(self, source: str, destination: str, kind: str, size: int) -> None:
        """Count a message handed to the network."""
        self.messages_sent += 1
        self.bytes_sent += size
        self.per_kind[kind] += 1
        self.per_kind_bytes[kind] += size
        link = self.per_link.setdefault((source, destination), LinkStats())
        link.messages += 1
        link.bytes += size

    def record_delivery(self, size: int, latency: float) -> None:
        """Count a message that reached its destination."""
        self.messages_delivered += 1
        self.bytes_delivered += size
        self.latencies.append(latency)

    def record_drop(self, source: str, destination: str) -> None:
        """Count a message lost to failure, partition or loss injection."""
        self.messages_dropped += 1
        link = self.per_link.setdefault((source, destination), LinkStats())
        link.drops += 1

    def record_migration(self, size: int) -> None:
        """Count one agent migration (an AGENT_TRANSFER that was delivered)."""
        self.migrations += 1
        self.migration_bytes += size

    def record_batch(self, coalesced: int, header_bytes_saved: int) -> None:
        """Count one delivery-fabric envelope coalescing *coalesced* messages."""
        self.batches += 1
        self.batched_messages += coalesced
        self.header_bytes_saved += header_bytes_saved

    def record_flush(self, cause: str) -> None:
        """Count one delivery-fabric outbox flush, keyed by what triggered it."""
        self.flush_causes[cause] += 1

    @property
    def early_flushes(self) -> int:
        """Flushes that fired before the window timer (threshold or deadline)."""
        return (self.flush_causes.get("size", 0) + self.flush_causes.get("bytes", 0)
                + self.flush_causes.get("deadline", 0))

    # -- reading -------------------------------------------------------------

    def mean_latency(self) -> Optional[float]:
        """Mean delivery latency in simulated seconds, or None if nothing delivered."""
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    def delivery_ratio(self) -> float:
        """Delivered / sent (1.0 when nothing was sent)."""
        if self.messages_sent == 0:
            return 1.0
        return self.messages_delivered / self.messages_sent

    def bytes_for_kind(self, kind: str) -> int:
        """Total bytes sent with messages of *kind*."""
        return self.per_kind_bytes.get(kind, 0)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict summary used by the benchmark reports."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "migrations": self.migrations,
            "migration_bytes": self.migration_bytes,
            "batches": self.batches,
            "batched_messages": self.batched_messages,
            "header_bytes_saved": self.header_bytes_saved,
            "early_flushes": self.early_flushes,
            "mean_latency": self.mean_latency() or 0.0,
            "delivery_ratio": self.delivery_ratio(),
        }

    def reset(self) -> None:
        """Zero every counter (used between benchmark repetitions)."""
        self.__init__()  # noqa: PLC2801 - simple and explicit for a dataclass
