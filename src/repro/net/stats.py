"""Network and kernel statistics counters.

Every experiment in EXPERIMENTS.md reads its numbers from a
:class:`NetworkStats` (bytes, messages, hops) or from the kernel's agent
ledger, so the counters live in one small, well-tested module.
"""

from __future__ import annotations

import dataclasses
import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["NetworkStats", "LinkStats", "StatsView", "LatencySketch"]


@dataclass
class LinkStats:
    """Per-link counters."""

    messages: int = 0
    bytes: int = 0
    drops: int = 0


class LatencySketch:
    """Bounded latency store: streaming moments plus a reservoir sample.

    Million-message runs used to grow ``NetworkStats.latencies`` linearly;
    this keeps an exact streaming count/sum/min/max (so
    :meth:`NetworkStats.mean_latency` stays exact) and an Algorithm-R
    reservoir of at most *capacity* values for percentile estimates.  The
    reservoir RNG is seeded per-sketch, so given the same record sequence
    the retained sample is identical on every execution backend.
    """

    __slots__ = ("capacity", "count", "total", "min", "max", "_sample", "_rng")

    def __init__(self, capacity: int = 4096, values: Optional[Sequence[float]] = None):
        self.capacity = max(1, int(capacity))
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sample: List[float] = []
        self._rng = random.Random(0x5EED)
        if values is not None:
            for value in values:
                self.record(value)

    # -- recording ----------------------------------------------------------

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._sample[slot] = value

    # list-era compatibility: ``stats.latencies.append(x)`` keeps working
    append = record

    # -- reading ------------------------------------------------------------

    def mean(self) -> Optional[float]:
        """Exact mean over *every* recorded value (not just the sample)."""
        if self.count == 0:
            return None
        return self.total / self.count

    @property
    def sample(self) -> List[float]:
        """The retained reservoir values (record order, <= capacity)."""
        return list(self._sample)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile estimated from the reservoir sample."""
        if not self._sample:
            return None
        ordered = sorted(self._sample)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    def merge_from(self, other: "LatencySketch") -> None:
        """Fold another sketch in: exact moments add, samples concatenate.

        Used by :class:`StatsView` to merge per-shard sketches; the merged
        sample is re-capped at this sketch's capacity (keeping a prefix of
        each part is fine for a transient merged view).
        """
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        room = self.capacity - len(self._sample)
        if room > 0:
            self._sample.extend(other._sample[:room])

    # -- state transfer (process shard backend) ------------------------------

    def to_state(self) -> Dict[str, object]:
        """Plain picklable dict for shard digests."""
        return {"capacity": self.capacity, "count": self.count,
                "total": self.total, "min": self.min, "max": self.max,
                "sample": list(self._sample),
                "rng_state": self._rng.getstate()}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LatencySketch":
        sketch = cls(capacity=state["capacity"])
        sketch.count = state["count"]
        sketch.total = state["total"]
        sketch.min = state["min"]
        sketch.max = state["max"]
        sketch._sample = list(state["sample"])
        rng_state = state.get("rng_state")
        if rng_state is not None:
            sketch._rng.setstate(rng_state)
        return sketch

    # -- dunders -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of *recorded* values (list-era ``len`` compatibility)."""
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self):
        """Iterate the retained sample (not the full stream)."""
        return iter(self._sample)

    def __repr__(self) -> str:
        return (f"LatencySketch(n={self.count}, mean="
                f"{self.mean() if self.count else None}, "
                f"sample={len(self._sample)}/{self.capacity})")


@dataclass
class NetworkStats:
    """Aggregate counters for everything that crossed the simulated network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    migrations: int = 0
    migration_bytes: int = 0
    #: wire messages that were delivery-fabric batch envelopes
    batches: int = 0
    #: logical messages coalesced into those envelopes
    batched_messages: int = 0
    #: header bytes the fabric avoided (one envelope header replaces N)
    header_bytes_saved: int = 0
    #: delivery-fabric outbox flushes by trigger: "window" (flush timer),
    #: "size" / "bytes" (threshold early flush), "deadline" (hard-deadline
    #: override of a sliding window), "reconfigure", "partition", "manual"
    flush_causes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: latest flow-control telemetry per (source, destination) pair when the
    #: fabric runs adaptive windows: current window, EWMA message/byte rates
    flow_windows: Dict[Tuple[str, str], Dict[str, float]] = field(default_factory=dict)
    per_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    per_kind_bytes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    per_link: Dict[Tuple[str, str], LinkStats] = field(default_factory=dict)
    #: bounded delivery-latency store: exact streaming count/sum/min/max plus
    #: a reservoir sample for percentiles (was an unbounded ``List[float]``)
    latencies: LatencySketch = field(default_factory=LatencySketch)

    # Durable-store counters (repro.store): the durability cost model and
    # the crash/recovery ledger the E12 experiment reads.
    #: cabinet mutations journaled by durable site stores
    wal_appends: int = 0
    #: group commits / explicit flushes (each pays one fsync)
    wal_commits: int = 0
    #: redo records made durable across those commits
    wal_records_committed: int = 0
    #: payload bytes those redo records carried (the bytes-proportional
    #: term of the WAL cost model charges for exactly these)
    wal_bytes_committed: int = 0
    #: group commits triggered early by a pending durability barrier
    #: (checkpoint piggybacking) instead of the full commit window
    wal_barrier_piggybacks: int = 0
    #: WAL compactions folding redo records into base snapshot images
    store_snapshots: int = 0
    #: redo records those compactions absorbed into the base images
    wal_records_folded: int = 0
    #: completed site recoveries (snapshot + WAL replay)
    recoveries: int = 0
    #: total simulated seconds sites spent replaying before accepting traffic
    recovery_seconds: float = 0.0
    #: durable folders rebuilt by those recoveries
    durable_folders_restored: int = 0
    #: durable folders a recovery failed to rebuild (an invariant breach:
    #: committed state must never be lost — this stays 0 unless a durable
    #: cabinet's image could not be restored)
    durable_folders_lost: int = 0
    #: un-flushed folders discarded by crashes ("state lost" events)
    state_lost_folders: int = 0
    #: un-committed WAL records discarded by crashes
    state_lost_records: int = 0

    # Shard-boundary counters (repro.shard): cross-shard traffic handed from
    # one shard's transport to another shard's event loop.
    #: messages handed across a shard boundary
    shard_handoffs: int = 0
    #: wire bytes those handoffs carried
    shard_handoff_bytes: int = 0
    #: handoffs whose computed arrival fell behind the destination shard's
    #: clock and were clamped to "now" (only possible when the optimistic
    #: flow-window bonus widens lookahead past the pure latency bound; stays
    #: 0 under the default ``flow_window_min = 0``)
    shard_late_arrivals: int = 0

    # -- recording -----------------------------------------------------------

    def record_send(self, source: str, destination: str, kind: str, size: int) -> None:
        """Count a message handed to the network."""
        self.messages_sent += 1
        self.bytes_sent += size
        self.per_kind[kind] += 1
        self.per_kind_bytes[kind] += size
        link = self.per_link.setdefault((source, destination), LinkStats())
        link.messages += 1
        link.bytes += size

    def record_delivery(self, size: int, latency: float) -> None:
        """Count a message that reached its destination."""
        self.messages_delivered += 1
        self.bytes_delivered += size
        self.latencies.record(latency)

    def record_drop(self, source: str, destination: str) -> None:
        """Count a message lost to failure, partition or loss injection."""
        self.messages_dropped += 1
        link = self.per_link.setdefault((source, destination), LinkStats())
        link.drops += 1

    def record_migration(self, size: int) -> None:
        """Count one agent migration (an AGENT_TRANSFER that was delivered)."""
        self.migrations += 1
        self.migration_bytes += size

    def record_batch(self, coalesced: int, header_bytes_saved: int) -> None:
        """Count one delivery-fabric envelope coalescing *coalesced* messages."""
        self.batches += 1
        self.batched_messages += coalesced
        self.header_bytes_saved += header_bytes_saved

    def record_flush(self, cause: str) -> None:
        """Count one delivery-fabric outbox flush, keyed by what triggered it."""
        self.flush_causes[cause] += 1

    def record_flow(self, source: str, destination: str, window: float,
                    message_rate: float, bytes_rate: float) -> None:
        """Publish the latest adaptive window/rate estimate for one pair."""
        self.flow_windows[(source, destination)] = {
            "window": window,
            "message_rate": message_rate,
            "bytes_rate": bytes_rate,
        }

    def reset_flow_for_site(self, site_name: str) -> None:
        """Drop flow telemetry for pairs touching *site_name* (crash reset)."""
        for key in [key for key in self.flow_windows if site_name in key]:
            del self.flow_windows[key]

    def record_wal_append(self) -> None:
        """Count one journaled cabinet mutation."""
        self.wal_appends += 1

    def record_wal_commit(self, records: int, size_bytes: int = 0) -> None:
        """Count one group commit / flush making *records* redo records durable."""
        self.wal_commits += 1
        self.wal_records_committed += records
        self.wal_bytes_committed += size_bytes

    def record_barrier_piggyback(self) -> None:
        """Count one group commit a pending durability barrier fired early."""
        self.wal_barrier_piggybacks += 1

    def record_store_snapshot(self, folded: int) -> None:
        """Count one WAL compaction (folding *folded* records into snapshots)."""
        self.store_snapshots += 1
        self.wal_records_folded += folded

    def record_recovery(self, seconds: float, folders_restored: int,
                        folders_lost: int = 0) -> None:
        """Count one completed site recovery and the replay time it took."""
        self.recoveries += 1
        self.recovery_seconds += seconds
        self.durable_folders_restored += folders_restored
        self.durable_folders_lost += folders_lost

    def record_state_lost(self, folders: int, records: int) -> None:
        """Count a crash discarding un-flushed folders / un-committed records."""
        self.state_lost_folders += folders
        self.state_lost_records += records

    def record_shard_handoff(self, size: int, late: bool = False) -> None:
        """Count one message handed across a shard boundary."""
        self.shard_handoffs += 1
        self.shard_handoff_bytes += size
        if late:
            self.shard_late_arrivals += 1

    def record_shard_late_arrival(self) -> None:
        """Count a handoff clamped into the destination shard's past.

        The direct (in-process) handoff path counts lateness on the origin
        shard at dispatch time; the queued paths (thread inboxes, process
        workers) only learn it destination-side at enqueue time and record
        it there.  Either way each late arrival is counted exactly once, so
        merged totals agree across backends.
        """
        self.shard_late_arrivals += 1

    @property
    def early_flushes(self) -> int:
        """Flushes that fired before the window timer (threshold or deadline)."""
        return (self.flush_causes.get("size", 0) + self.flush_causes.get("bytes", 0)
                + self.flush_causes.get("deadline", 0))

    # -- reading -------------------------------------------------------------

    def mean_latency(self) -> Optional[float]:
        """Mean delivery latency in simulated seconds, or None if nothing delivered.

        Exact over every delivery: the sketch streams count/sum even after
        its percentile reservoir saturates.
        """
        return self.latencies.mean()

    def delivery_ratio(self) -> float:
        """Delivered / sent (1.0 when nothing was sent)."""
        if self.messages_sent == 0:
            return 1.0
        return self.messages_delivered / self.messages_sent

    def bytes_for_kind(self, kind: str) -> int:
        """Total bytes sent with messages of *kind*."""
        return self.per_kind_bytes.get(kind, 0)

    def flow_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-pair flow telemetry keyed ``"source->destination"`` (JSON-able).

        The public view of the adaptive fabric's per-destination windows and
        EWMA rates — benchmarks and tests read this instead of reaching into
        the transport's flow controller.
        """
        return {f"{source}->{destination}": dict(info)
                for (source, destination), info in self.flow_windows.items()}

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict summary used by the benchmark reports.

        Every nested mapping is a fresh copy — mutating the snapshot must
        never reach back into the live counters.
        """
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "migrations": self.migrations,
            "migration_bytes": self.migration_bytes,
            "batches": self.batches,
            "batched_messages": self.batched_messages,
            "header_bytes_saved": self.header_bytes_saved,
            "early_flushes": self.early_flushes,
            "flush_causes": dict(self.flush_causes),
            "per_kind": dict(self.per_kind),
            "per_kind_bytes": dict(self.per_kind_bytes),
            "flow_pairs": len(self.flow_windows),
            "flow_windows": self.flow_snapshot(),
            "wal_appends": self.wal_appends,
            "wal_commits": self.wal_commits,
            "wal_records_committed": self.wal_records_committed,
            "wal_bytes_committed": self.wal_bytes_committed,
            "wal_barrier_piggybacks": self.wal_barrier_piggybacks,
            "store_snapshots": self.store_snapshots,
            "wal_records_folded": self.wal_records_folded,
            "recoveries": self.recoveries,
            "recovery_seconds": self.recovery_seconds,
            "durable_folders_restored": self.durable_folders_restored,
            "durable_folders_lost": self.durable_folders_lost,
            "state_lost_folders": self.state_lost_folders,
            "state_lost_records": self.state_lost_records,
            "shard_handoffs": self.shard_handoffs,
            "shard_handoff_bytes": self.shard_handoff_bytes,
            "shard_late_arrivals": self.shard_late_arrivals,
            "mean_latency": self.mean_latency() or 0.0,
            "latency_count": self.latencies.count,
            "latency_p50": self.latencies.percentile(0.50) or 0.0,
            "latency_p99": self.latencies.percentile(0.99) or 0.0,
            "delivery_ratio": self.delivery_ratio(),
        }

    # -- state transfer (process shard backend) -------------------------------

    def export_state(self) -> Dict[str, object]:
        """Every counter as one picklable plain-dict.

        The process shard backend's workers ship their stats to the
        coordinator in state digests; ``defaultdict`` fields (whose lambda
        factories do not pickle) are flattened to plain dicts, containers
        are copied so the exported state never aliases the live counters.
        """
        state: Dict[str, object] = {}
        for spec in dataclasses.fields(NetworkStats):
            value = getattr(self, spec.name)
            if isinstance(value, LatencySketch):
                value = value.to_state()
            elif isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = list(value)
            state[spec.name] = value
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        """Replace every counter from an :meth:`export_state` dict.

        Each shard's stats are owned entirely by one worker, so a mirror is
        refreshed by whole-state replacement — no merge arithmetic, no
        drift.  Unknown keys are ignored so digests stay forward-compatible.
        """
        for spec in dataclasses.fields(NetworkStats):
            if spec.name not in state:
                continue
            value = state[spec.name]
            if spec.name == "latencies":
                # accept both sketch-state dicts and list-era plain lists
                value = (LatencySketch.from_state(value)
                         if isinstance(value, dict)
                         else LatencySketch(values=value))
            elif spec.name in ("flush_causes", "per_kind", "per_kind_bytes"):
                value = defaultdict(int, value)
            elif isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = list(value)
            setattr(self, spec.name, value)

    def reset(self) -> None:
        """Zero every counter (used between benchmark repetitions)."""
        self.__init__()  # noqa: PLC2801 - simple and explicit for a dataclass


#: NetworkStats fields that merge by summation across shards (everything that
#: is not one of the container fields merged structurally by StatsView).
_MERGED_CONTAINER_FIELDS = ("flush_causes", "flow_windows", "per_kind",
                            "per_kind_bytes", "per_link", "latencies")
_SCALAR_STAT_FIELDS = frozenset(
    spec.name for spec in dataclasses.fields(NetworkStats)
    if spec.name not in _MERGED_CONTAINER_FIELDS)


class StatsView:
    """A live merged view over several shards' :class:`NetworkStats`.

    The sharded kernel facade exposes one of these as ``kernel.stats`` so
    code written against a single kernel — benchmarks summing
    ``stats.messages_sent``, reports walking ``stats.snapshot()`` — reads
    cluster-wide totals without knowing about shards.  Scalar counters sum
    across shards; container fields (per-kind, per-link, flow telemetry,
    latencies) merge structurally.  The view is read-only in spirit: it
    never records, and ``reset()`` fans out to every underlying shard.
    """

    def __init__(self, parts: Sequence[NetworkStats]):
        self._parts = list(parts)

    def __getattr__(self, name: str):
        if name in _SCALAR_STAT_FIELDS:
            return sum(getattr(part, name) for part in self._parts)
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    # -- merged container fields ------------------------------------------------

    @property
    def flush_causes(self) -> Dict[str, int]:
        merged: Dict[str, int] = defaultdict(int)
        for part in self._parts:
            for cause, count in part.flush_causes.items():
                merged[cause] += count
        return dict(merged)

    @property
    def per_kind(self) -> Dict[str, int]:
        merged: Dict[str, int] = defaultdict(int)
        for part in self._parts:
            for kind, count in part.per_kind.items():
                merged[kind] += count
        return dict(merged)

    @property
    def per_kind_bytes(self) -> Dict[str, int]:
        merged: Dict[str, int] = defaultdict(int)
        for part in self._parts:
            for kind, size in part.per_kind_bytes.items():
                merged[kind] += size
        return dict(merged)

    @property
    def per_link(self) -> Dict[Tuple[str, str], LinkStats]:
        merged: Dict[Tuple[str, str], LinkStats] = {}
        for part in self._parts:
            for pair, link in part.per_link.items():
                into = merged.setdefault(pair, LinkStats())
                into.messages += link.messages
                into.bytes += link.bytes
                into.drops += link.drops
        return merged

    @property
    def flow_windows(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        # Each pair's flow window is tracked by exactly one shard (the
        # source site's owner), so a plain union never collides.
        merged: Dict[Tuple[str, str], Dict[str, float]] = {}
        for part in self._parts:
            for pair, info in part.flow_windows.items():
                merged[pair] = dict(info)
        return merged

    @property
    def latencies(self) -> LatencySketch:
        """Merged sketch: exact combined moments, concatenated samples."""
        merged = LatencySketch()
        for part in self._parts:
            merged.merge_from(part.latencies)
        return merged

    # -- derived readers: reuse the NetworkStats implementations, which only
    # touch the attributes merged above (plain duck typing).

    early_flushes = NetworkStats.early_flushes
    mean_latency = NetworkStats.mean_latency
    delivery_ratio = NetworkStats.delivery_ratio
    bytes_for_kind = NetworkStats.bytes_for_kind
    flow_snapshot = NetworkStats.flow_snapshot
    snapshot = NetworkStats.snapshot

    def reset(self) -> None:
        """Zero every underlying shard's counters."""
        for part in self._parts:
            part.reset()
