"""The ``rsh``-style transport (paper section 6, first rexec implementation).

"The first uses the UNIX ``rsh`` command to start a Tcl interpreter on the
remote host."  The dominant characteristic is a large fixed cost per
migration: every agent transfer forks a remote shell and starts a fresh
interpreter, and nothing is cached between transfers.  The reproduction
models that as a large, slightly noisy setup delay charged to every
message, largest for agent transfers.
"""

from __future__ import annotations

from repro.flow import CostModel
from repro.net.message import Message, MessageKind
from repro.net.transport import Transport

__all__ = ["RshTransport"]


class RshTransport(Transport):
    """Connectionless transport with a heavy per-transfer start-up cost."""

    name = "rsh"

    #: seconds to fork rsh + start a remote interpreter for an agent transfer
    AGENT_SETUP = 0.250
    #: seconds of per-message overhead for anything else (still spawns rsh)
    MESSAGE_SETUP = 0.120
    #: jitter fraction applied to the setup cost
    JITTER = 0.10

    #: the shared cost-model view of the two setups: every message pays a
    #: full fork (a sync in CostModel terms), noisily — nothing is cached
    AGENT_COSTS = CostModel(sync=AGENT_SETUP, jitter=JITTER)
    MESSAGE_COSTS = CostModel(sync=MESSAGE_SETUP, jitter=JITTER)

    def setup_delay(self, message: Message) -> float:
        model = self.AGENT_COSTS if message.kind == MessageKind.AGENT_TRANSFER \
            else self.MESSAGE_COSTS
        return model.cost(items=0, syncs=1, rng=self.rng)
