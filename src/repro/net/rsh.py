"""The ``rsh``-style transport (paper section 6, first rexec implementation).

"The first uses the UNIX ``rsh`` command to start a Tcl interpreter on the
remote host."  The dominant characteristic is a large fixed cost per
migration: every agent transfer forks a remote shell and starts a fresh
interpreter, and nothing is cached between transfers.  The reproduction
models that as a large, slightly noisy setup delay charged to every
message, largest for agent transfers.
"""

from __future__ import annotations

from repro.net.message import Message, MessageKind
from repro.net.transport import Transport

__all__ = ["RshTransport"]


class RshTransport(Transport):
    """Connectionless transport with a heavy per-transfer start-up cost."""

    name = "rsh"

    #: seconds to fork rsh + start a remote interpreter for an agent transfer
    AGENT_SETUP = 0.250
    #: seconds of per-message overhead for anything else (still spawns rsh)
    MESSAGE_SETUP = 0.120
    #: jitter fraction applied to the setup cost
    JITTER = 0.10

    def setup_delay(self, message: Message) -> float:
        base = self.AGENT_SETUP if message.kind == MessageKind.AGENT_TRANSFER \
            else self.MESSAGE_SETUP
        jitter = base * self.JITTER * self.rng.random()
        return base + jitter
