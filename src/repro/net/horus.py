"""Horus-style group communication (paper section 6, third rexec implementation).

The TACOMA prototype's third transport was "Tcl/Horus, a version of Tcl
that uses Horus [vRHB94] to support group communication and
fault-tolerance."  Horus provides *process groups* with membership views
and virtually synchronous reliable multicast: every surviving member sees
the same sequence of views, and a message multicast in view ``V`` is
delivered only to members of ``V`` that survive into the next view.

The reproduction implements the subset TACOMA consumed:

* point-to-point messaging (so :class:`HorusTransport` is a drop-in
  :class:`~repro.net.transport.Transport` and ``rexec`` can use it);
* named process groups with join/leave;
* reliable FIFO multicast within the current view;
* failure detection that removes crashed members and installs a new view at
  every surviving member after a bounded detection delay;
* view-change notifications delivered to group members through the same
  per-site handler used for normal messages (kind ``GROUP``).

The fault-tolerance layer (:mod:`repro.fault`) can subscribe to view
changes instead of running its own ping-based detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.errors import GroupError, NotMemberError
from repro.flow import CostModel
from repro.net.message import Message, MessageKind
from repro.net.transport import Transport

__all__ = ["GroupView", "ProcessGroup", "HorusTransport"]


@dataclass(frozen=True)
class GroupView:
    """One membership view: a numbered snapshot of who is in the group."""

    group: str
    view_id: int
    members: tuple

    def __contains__(self, site: str) -> bool:
        return site in self.members


@dataclass
class ProcessGroup:
    """Mutable group state kept by the transport (the 'group server' role)."""

    name: str
    members: List[str] = field(default_factory=list)
    view_id: int = 0
    #: multicast sequence number, for FIFO ordering bookkeeping
    next_seqno: int = 0
    #: history of installed views (useful for tests and debugging)
    history: List[GroupView] = field(default_factory=list)

    def view(self) -> GroupView:
        """The current view."""
        return GroupView(self.name, self.view_id, tuple(self.members))


#: callback signature for view-change observers: observer(view)
ViewObserver = Callable[[GroupView], None]


class HorusTransport(Transport):
    """Point-to-point transport plus Horus-style group communication.

    Point-to-point costs sit between rsh and raw TCP: Horus keeps long-lived
    channels between group members, so per-message setup is small, but its
    protocol stack adds a per-message processing cost.
    """

    name = "horus"

    #: channel establishment on first contact between two sites
    CONNECT_SETUP = 0.030
    #: protocol-stack overhead per message on an established channel
    ESTABLISHED_SETUP = 0.004
    #: how long after a crash surviving members install the next view.
    #: Scheduled on the kernel's Scheduler, so under backend="realtime"
    #: the failure-detection timeout runs off a real timer — survivors
    #: install the new view 150 wall-clock milliseconds after the crash.
    DETECTION_DELAY = 0.150

    #: shared cost-model view: per-message protocol-stack base, plus one
    #: sync (channel establishment) on first contact between a pair
    SETUP_COSTS = CostModel(base=ESTABLISHED_SETUP,
                            sync=CONNECT_SETUP - ESTABLISHED_SETUP)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._channels: set = set()
        self._groups: Dict[str, ProcessGroup] = {}
        self._observers: Dict[str, List[ViewObserver]] = {}
        #: delivered multicast count per group, visible to benchmarks
        self.multicasts_delivered: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # point-to-point transport behaviour
    # ------------------------------------------------------------------

    def setup_delay(self, message: Message) -> float:
        pair = tuple(sorted((message.source, message.destination)))
        if pair in self._channels:
            return self.SETUP_COSTS.cost(items=1, syncs=0)
        self._channels.add(pair)
        return self.SETUP_COSTS.cost(items=1, syncs=1)

    # ------------------------------------------------------------------
    # group management
    # ------------------------------------------------------------------

    def create_group(self, name: str, members: Sequence[str] = ()) -> GroupView:
        """Create a process group with the given initial members."""
        if name in self._groups:
            raise GroupError(f"group {name!r} already exists")
        group = ProcessGroup(name=name)
        self._groups[name] = group
        for member in members:
            self._add_member(group, member)
        return self._install_view(group)

    def has_group(self, name: str) -> bool:
        """True if a group called *name* exists."""
        return name in self._groups

    def group_view(self, name: str) -> GroupView:
        """The current view of group *name*."""
        return self._group(name).view()

    def view_history(self, name: str) -> List[GroupView]:
        """Every view installed for group *name*, oldest first."""
        return list(self._group(name).history)

    def join(self, name: str, site: str) -> GroupView:
        """Add *site* to group *name* and install a new view."""
        group = self._group(name)
        if site in group.members:
            return group.view()
        self._add_member(group, site)
        return self._install_view(group)

    def leave(self, name: str, site: str) -> GroupView:
        """Remove *site* from group *name* (voluntary leave) and install a new view."""
        group = self._group(name)
        if site not in group.members:
            raise NotMemberError(f"{site!r} is not a member of group {name!r}")
        group.members.remove(site)
        return self._install_view(group)

    def subscribe_views(self, name: str, observer: ViewObserver) -> None:
        """Register a callback invoked (immediately in simulated time) at each new view."""
        self._group(name)  # existence check
        self._observers.setdefault(name, []).append(observer)

    def metrics(self) -> Dict[str, int]:
        """Registry source (``kernel.metrics``): membership/multicast telemetry."""
        return {
            "horus_channels_open": len(self._channels),
            "horus_groups": len(self._groups),
            "horus_views_installed": sum(len(group.history)
                                         for group in self._groups.values()),
            "horus_multicast_copies": sum(self.multicasts_delivered.values()),
        }

    # ------------------------------------------------------------------
    # multicast
    # ------------------------------------------------------------------

    def multicast(self, name: str, source: str, payload: dict,
                  declared_size: Optional[int] = None,
                  kind: str = MessageKind.GROUP) -> int:
        """Reliably multicast *payload* to every member of the group's current view.

        Returns the number of copies handed to the network.  The source must
        be a member (Horus' sender-in-group model).  Delivery to the sender
        itself is included — TACOMA agents use self-delivery for ordering.
        """
        group = self._group(name)
        if source not in group.members:
            raise NotMemberError(f"{source!r} is not a member of group {name!r}")
        seqno = group.next_seqno
        group.next_seqno += 1
        view = group.view()
        copies = 0
        for member in view.members:
            message = Message(
                source=source,
                destination=member,
                kind=kind,
                payload={
                    "group": name,
                    "event": "mcast",
                    "view_id": view.view_id,
                    "seqno": seqno,
                    "body": payload,
                },
                declared_size=declared_size,
            )
            if member == source:
                # Local delivery: no wire cost beyond protocol processing.
                self.loop.schedule(self.ESTABLISHED_SETUP,
                                   lambda msg=message: self._deliver_local(msg),
                                   label=f"horus-self-{name}")
            else:
                self.send(message)
            copies += 1
        self.multicasts_delivered[name] = self.multicasts_delivered.get(name, 0) + copies
        return copies

    def _deliver_local(self, message: Message) -> None:
        handler = self._handlers.get(message.destination)
        if handler is None or self.topology.is_down(message.destination):
            return
        message.delivered_at = self.loop.now
        handler(message)

    # ------------------------------------------------------------------
    # failure handling -> view changes
    # ------------------------------------------------------------------

    def on_site_down(self, site_name: str) -> None:
        """Drop channels touching the site and schedule view changes."""
        super().on_site_down(site_name)  # drop the fabric's pending outboxes
        self._channels = {pair for pair in self._channels if site_name not in pair}
        for group in self._groups.values():
            if site_name in group.members:
                self.loop.schedule(
                    self.DETECTION_DELAY,
                    lambda g=group, s=site_name: self._exclude_member(g, s),
                    label=f"horus-detect-{group.name}")

    def on_site_up(self, site_name: str) -> None:
        """Recovered sites do not rejoin automatically; they must call :meth:`join`."""

    def _exclude_member(self, group: ProcessGroup, site: str) -> None:
        if site not in group.members:
            return
        if not self.topology.is_down(site):
            # The site recovered before the detection delay elapsed; Horus
            # would have kept it in the view.
            return
        group.members.remove(site)
        self._install_view(group)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _group(self, name: str) -> ProcessGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise GroupError(f"no group named {name!r}") from None

    def _add_member(self, group: ProcessGroup, site: str) -> None:
        if site not in self.topology:
            raise GroupError(f"cannot add unknown site {site!r} to group {group.name!r}")
        group.members.append(site)

    def _install_view(self, group: ProcessGroup) -> GroupView:
        group.view_id += 1
        view = group.view()
        group.history.append(view)
        # Notify members through their message handlers ...
        for member in view.members:
            message = Message(
                source=member, destination=member, kind=MessageKind.GROUP,
                payload={"group": group.name, "event": "view",
                         "view_id": view.view_id, "members": list(view.members)},
                declared_size=32 * max(1, len(view.members)),
            )
            self.loop.schedule(self.ESTABLISHED_SETUP,
                               lambda msg=message: self._deliver_local(msg),
                               label=f"horus-view-{group.name}")
        # ... and any registered observers (used by repro.fault).
        for observer in self._observers.get(group.name, []):
            self.loop.schedule(0.0, lambda obs=observer, v=view: obs(v),
                               label=f"horus-observer-{group.name}")
        return view
