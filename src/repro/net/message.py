"""Wire messages exchanged between sites.

Transports move :class:`Message` objects.  The payload is an opaque dict
(typically a serialised briefcase plus control fields); the size model used
for latency/bandwidth accounting lives here so every transport charges the
same way.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Message", "MessageKind"]

_message_ids = itertools.count(1)


class MessageKind:
    """Symbolic message kinds used across the system."""

    AGENT_TRANSFER = "agent-transfer"     # rexec shipping an agent
    FOLDER_DELIVERY = "folder-delivery"   # courier delivering a folder
    CONTROL = "control"                   # pings, acks
    GROUP = "group"                       # Horus multicast / view traffic
    STATUS = "status"                     # monitor -> broker load reports
    DATA = "data"                         # raw data (client-server baseline)
    BATCH = "batch"                       # delivery-fabric envelope of coalesced messages
    FT_RELEASE = "ft-release"             # rear-guard release notices (batchable)
    FT_RELAUNCH = "ft-relaunch"           # rear-guard snapshot relaunch (batchable transfer)

    ALL = (AGENT_TRANSFER, FOLDER_DELIVERY, CONTROL, GROUP, STATUS, DATA, BATCH,
           FT_RELEASE, FT_RELAUNCH)
    #: kinds that move an agent (or an agent snapshot) between sites; a
    #: delivered message of one of these counts as a migration
    MIGRATION_KINDS = (AGENT_TRANSFER, FT_RELAUNCH)


@dataclass
class Message:
    """One message on the simulated wire."""

    source: str
    destination: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    #: explicit payload size in bytes; when None the size is estimated from
    #: the payload via :meth:`size_bytes`.
    declared_size: Optional[int] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: float = 0.0
    delivered_at: Optional[float] = None
    hops: int = 1
    #: causal trace context ``(trace_id, parent_span_id)`` attached when the
    #: sender's kernel traces the carried briefcase (repro.obs).  Rides the
    #: message through batching envelopes and pickled process handoffs; the
    #: destination kernel records the network-leg span from it.
    trace: Optional[tuple] = field(default=None, repr=False, compare=False)
    #: memoised result of :meth:`size_bytes` — the payload is immutable once
    #: the message is handed to a transport, and send/deliver accounting used
    #: to re-pickle the payload on every call
    _size_cache: Optional[int] = field(default=None, init=False, repr=False,
                                       compare=False)

    #: fixed per-message framing charged by the size model (headers, routing)
    HEADER_BYTES = 64

    def size_bytes(self) -> int:
        """Bytes charged to the link for this message (computed once, then cached)."""
        if self._size_cache is not None:
            return self._size_cache
        if self.declared_size is not None:
            size = self.HEADER_BYTES + int(self.declared_size)
        else:
            # Estimate by pickling the payload; control payloads are tiny
            # dicts so the estimate is stable and cheap.
            try:
                body = len(pickle.dumps(self.payload, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception:
                body = 256
            size = self.HEADER_BYTES + body
        self._size_cache = size
        return size

    def body_bytes(self) -> int:
        """Bytes of payload excluding the per-message framing header.

        This is what a delivery-fabric batch re-ships: the batch envelope
        pays :data:`HEADER_BYTES` once for all coalesced messages.
        """
        return self.size_bytes() - self.HEADER_BYTES

    def latency_seconds(self, latency: float, bandwidth_bytes_per_s: float) -> float:
        """Transfer time over a link with the given latency and bandwidth."""
        if bandwidth_bytes_per_s <= 0:
            return latency
        return latency + self.size_bytes() / bandwidth_bytes_per_s

    def __repr__(self) -> str:
        return (f"Message(#{self.message_id} {self.kind} {self.source}->"
                f"{self.destination}, {self.size_bytes()}B)")
