"""Discrete-event simulation clock and event queue.

Every component of the reproduction — sites, transports, agents, failure
schedules — runs on one :class:`EventLoop`.  Time is simulated seconds
(floats).  Events at the same timestamp fire in the order they were
scheduled, which keeps runs deterministic for a fixed random seed.

The loop is a kernel hot path: high-population workloads schedule one or
more events per agent step, so :class:`Event` is a ``__slots__`` class
(not a dataclass) and cancellation uses lazy deletion with periodic
compaction — ``pending`` is an O(1) counter and cancelled entries are
purged in bulk once they outnumber half the heap instead of being paid
for on every pop.

:class:`SimClock` and :class:`EventLoop` are the *deterministic*
implementations of the :class:`~repro.core.timing.Clock` and
:class:`~repro.core.timing.Scheduler` protocols — the
``KernelConfig(backend="sim")`` default.  The wall-clock pair lives in
:mod:`repro.rt` (:class:`~repro.rt.AsyncioScheduler` subclasses
:class:`EventLoop`, keeping the heap and cancellation bookkeeping and
replacing only how the gaps between events pass).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import KernelError
# Canonical home is repro.core.timing; re-exported here because the
# epsilon has always been part of this module's public surface.
from repro.core.timing import PAST_EPSILON

__all__ = ["Event", "EventLoop", "SimClock", "PAST_EPSILON"]


class SimClock:
    """Monotonic simulated clock, advanced only by the event loop."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _advance_to(self, timestamp: float) -> None:
        if timestamp < self._now - 1e-12:
            raise KernelError(
                f"clock cannot move backwards ({timestamp} < {self._now})")
        self._now = max(self._now, timestamp)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class Event:
    """A scheduled callback.  Ordering is (time, sequence number).

    Plain ``__slots__`` class rather than a dataclass: millions of these
    are created per benchmark run and the slot layout roughly halves the
    per-event memory and construction cost.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_loop")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any],
                 label: str = "", cancelled: bool = False,
                 _loop: Optional["EventLoop"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        self._loop = _loop

    def cancel(self) -> None:
        """Prevent the callback from firing (the heap entry stays, inert).

        Cancelling an event that already fired (or left the heap) is a
        no-op: the loop clears ``_loop`` when it pops an entry, so a late
        cancel cannot corrupt the live/dead counters.
        """
        if self.cancelled:
            return
        self.cancelled = True
        loop, self._loop = self._loop, None
        if loop is not None:
            loop._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __le__(self, other: "Event") -> bool:
        return (self.time, self.seq) <= (other.time, other.seq)

    def __gt__(self, other: "Event") -> bool:
        return (self.time, self.seq) > (other.time, other.seq)

    def __ge__(self, other: "Event") -> bool:
        return (self.time, self.seq) >= (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state}, {self.label!r})"


#: one ``schedule_many`` entry: (delay, callback) or (delay, callback, label)
ScheduleEntry = Tuple


class EventLoop:
    """A heap-based discrete-event scheduler.

    The loop deliberately stays tiny: ``schedule``, ``schedule_many``,
    ``run``, ``run_until`` and ``step``.  Everything that looks like
    concurrency in the agent system (meets, migrations, timers, failure
    injection) is expressed as callbacks scheduled here.
    """

    #: compaction is skipped below this heap size (not worth the churn)
    _COMPACT_MIN = 64

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Event] = []
        self._next_seq = 0
        self._processed = 0
        #: not-yet-cancelled events still queued (kept O(1) for ``pending``)
        self._live = 0
        #: cancelled events still occupying heap slots (lazy deletion debt)
        self._dead = 0

    # -- scheduling -------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Run *callback* after *delay* simulated seconds; return a cancellable handle."""
        if delay < 0:
            raise KernelError(f"cannot schedule an event {delay} seconds in the past")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(self.clock.now + delay, seq, callback, label, _loop=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_many(self, entries: Iterable[Sequence]) -> List[Event]:
        """Schedule a batch of ``(delay, callback[, label])`` entries at once.

        The kernel uses this on the meet/spawn hot paths where one syscall
        produces several events: the per-call validation and bookkeeping is
        paid once, and large batches are heapified in bulk instead of paying
        ``len(entries)`` sift-downs.
        """
        now = self.clock.now
        events: List[Event] = []
        for entry in entries:
            delay = entry[0]
            if delay < 0:
                raise KernelError(f"cannot schedule an event {delay} seconds in the past")
            label = entry[2] if len(entry) > 2 else ""
            seq = self._next_seq
            self._next_seq = seq + 1
            events.append(Event(now + delay, seq, entry[1], label, _loop=self))
        if not events:
            return events
        # Bulk heapify beats repeated pushes once the batch is a sizeable
        # fraction of the heap; for the common 2-3 event batch, push.
        if len(events) > 8 and len(events) * 4 >= len(self._heap):
            self._heap.extend(events)
            heapq.heapify(self._heap)
        else:
            for event in events:
                heapq.heappush(self._heap, event)
        self._live += len(events)
        return events

    def schedule_at(self, timestamp: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Run *callback* at absolute simulated time *timestamp*.

        Timestamps within :data:`PAST_EPSILON` of the current time are
        clamped to "now" (tolerating float jitter); anything genuinely in
        the past raises — silently rewriting history hid real scheduling
        bugs (see ``schedule``, which has always rejected negative delays).
        """
        delta = timestamp - self.clock.now
        if delta < -PAST_EPSILON:
            raise KernelError(
                f"cannot schedule an event at {timestamp}: "
                f"it is {-delta} seconds in the past (now={self.clock.now})")
        return self.schedule(max(0.0, delta), callback, label)

    # -- lazy-deletion bookkeeping ----------------------------------------------

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts once debt exceeds half the heap."""
        self._live -= 1
        self._dead += 1
        if self._dead * 2 > len(self._heap) and len(self._heap) >= self._COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Purge cancelled entries and rebuild the heap in one O(n) pass."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    # -- execution ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (convenience mirror of ``clock.now``)."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._dead -= 1
                continue
            event._loop = None  # off the heap: late cancels must not count
            self._live -= 1
            self.clock._advance_to(event.time)
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or *max_events* fire).  Returns events run."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            if not self.step():
                break
            executed += 1
        return executed

    def run_until(self, timestamp: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= *timestamp*; the clock ends at *timestamp*.

        Events scheduled beyond the horizon stay queued.  When *max_events*
        stops the run with due events still queued, the clock stays where the
        last event left it — advancing it to *timestamp* anyway would strand
        those events in the past and poison the next ``step``.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                upcoming = self._peek()
                if upcoming is not None and upcoming.time <= timestamp + 1e-12:
                    return executed
                break
            upcoming = self._peek()
            if upcoming is None or upcoming.time > timestamp + 1e-12:
                break
            self.step()
            executed += 1
        self.clock._advance_to(max(self.clock.now, timestamp))
        return executed

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or None when the queue is empty.

        The shard coordinator polls this each synchronisation round to
        compute every shard's lower bound before granting horizons.
        """
        upcoming = self._peek()
        return upcoming.time if upcoming is not None else None

    def _peek(self) -> Optional[Event]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._dead -= 1
        return self._heap[0] if self._heap else None

    def __repr__(self) -> str:
        return (f"EventLoop(now={self.clock.now:.6f}, pending={self.pending}, "
                f"processed={self._processed})")
