"""Discrete-event simulation clock and event queue.

Every component of the reproduction — sites, transports, agents, failure
schedules — runs on one :class:`EventLoop`.  Time is simulated seconds
(floats).  Events at the same timestamp fire in the order they were
scheduled, which keeps runs deterministic for a fixed random seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.errors import KernelError

__all__ = ["Event", "EventLoop", "SimClock"]


class SimClock:
    """Monotonic simulated clock, advanced only by the event loop."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _advance_to(self, timestamp: float) -> None:
        if timestamp < self._now - 1e-12:
            raise KernelError(
                f"clock cannot move backwards ({timestamp} < {self._now})")
        self._now = max(self._now, timestamp)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the callback from firing (the heap entry stays, inert)."""
        self.cancelled = True


class EventLoop:
    """A heap-based discrete-event scheduler.

    The loop deliberately stays tiny: ``schedule``, ``run``, ``run_until``
    and ``step``.  Everything that looks like concurrency in the agent
    system (meets, migrations, timers, failure injection) is expressed as
    callbacks scheduled here.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._processed = 0

    # -- scheduling -------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Run *callback* after *delay* simulated seconds; return a cancellable handle."""
        if delay < 0:
            raise KernelError(f"cannot schedule an event {delay} seconds in the past")
        event = Event(self.clock.now + delay, next(self._sequence), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, timestamp: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Run *callback* at absolute simulated time *timestamp*."""
        return self.schedule(max(0.0, timestamp - self.clock.now), callback, label)

    # -- execution ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (convenience mirror of ``clock.now``)."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock._advance_to(event.time)
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or *max_events* fire).  Returns events run."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            if not self.step():
                break
            executed += 1
        return executed

    def run_until(self, timestamp: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= *timestamp*; the clock ends at *timestamp*.

        Events scheduled beyond the horizon stay queued.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            upcoming = self._peek()
            if upcoming is None or upcoming.time > timestamp + 1e-12:
                break
            self.step()
            executed += 1
        self.clock._advance_to(max(self.clock.now, timestamp))
        return executed

    def _peek(self) -> Optional[Event]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def __repr__(self) -> str:
        return (f"EventLoop(now={self.clock.now:.6f}, pending={self.pending}, "
                f"processed={self._processed})")
