"""Network topology: sites, links, latency/bandwidth, partitions and routing.

The paper's prototype ran on a handful of workstations at Cornell and
Tromsø connected by a LAN and a transatlantic link.  The reproduction
models the network as an undirected graph (networkx) whose edges carry a
latency (seconds) and a bandwidth (bytes/second).  Partitions are expressed
by temporarily removing reachability between site groups; routing is
shortest-path by latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.errors import NoRouteError, UnknownSiteError

__all__ = ["LinkSpec", "Topology", "lan", "two_clusters", "random_topology", "ring",
           "star", "switched_fabric"]


@dataclass
class LinkSpec:
    """Latency/bandwidth parameters of one link."""

    latency: float = 0.002           # 2 ms default LAN latency
    bandwidth: float = 1_250_000.0   # 10 Mbit/s in bytes per second
    loss_rate: float = 0.0           # probability a message on this link is lost


class Topology:
    """The site graph plus partition state.

    All methods that take site names raise :class:`UnknownSiteError` for
    unknown names so callers fail loudly rather than silently routing to a
    typo.
    """

    #: route-cost cache bound: when a workload routes between more unique
    #: pairs than this, the cache is simply cleared and rebuilt on demand
    _ROUTE_CACHE_MAX = 65_536

    def __init__(self) -> None:
        self._graph = nx.Graph()
        #: sites currently considered crashed (no traffic in or out)
        self._down: Set[str] = set()
        #: active partition: mapping site -> partition group id
        self._partition: Dict[str, int] = {}
        #: memoised per-(source, destination) routes — ``path_cost`` is
        #: called once per message, and at thousands of sites the per-call
        #: Dijkstra dominates the whole simulation.  Any mutation that can
        #: change routing (new sites/links, crashes, recoveries, partitions)
        #: clears it.  Values are the route's link specs in path order.
        self._route_cache: Dict[Tuple[str, str], Tuple[LinkSpec, ...]] = {}

    # -- construction -----------------------------------------------------------

    def add_site(self, name: str) -> None:
        """Add a site with no links."""
        self._graph.add_node(name)
        self._route_cache.clear()

    def add_link(self, a: str, b: str, spec: Optional[LinkSpec] = None) -> None:
        """Add (or replace) an undirected link between *a* and *b*."""
        spec = spec or LinkSpec()
        self._graph.add_edge(a, b, spec=spec)
        self._route_cache.clear()

    def sites(self) -> List[str]:
        """All site names."""
        return list(self._graph.nodes)

    def has_site(self, name: str) -> bool:
        """True if *name* is a site in this topology."""
        return name in self._graph

    def neighbors(self, name: str) -> List[str]:
        """Sites directly linked to *name*."""
        self._check(name)
        return list(self._graph.neighbors(name))

    def link(self, a: str, b: str) -> LinkSpec:
        """The :class:`LinkSpec` of the direct link a—b."""
        self._check(a)
        self._check(b)
        if not self._graph.has_edge(a, b):
            raise NoRouteError(f"no direct link between {a!r} and {b!r}")
        return self._graph.edges[a, b]["spec"]

    def links(self) -> Iterator[Tuple[str, str, LinkSpec]]:
        """Every direct link as ``(a, b, spec)`` (each undirected link once).

        The shard clock sync seeds its lookahead matrix from this — an O(E)
        scan instead of an all-pairs shortest-path pass.
        """
        for a, b, data in self._graph.edges(data=True):
            yield a, b, data["spec"]

    # -- failure / partition state ------------------------------------------------

    def mark_down(self, name: str) -> None:
        """Mark a site as crashed (kernel calls this; traffic is refused)."""
        self._check(name)
        self._down.add(name)
        self._route_cache.clear()

    def mark_up(self, name: str) -> None:
        """Mark a site as recovered."""
        self._check(name)
        self._down.discard(name)
        self._route_cache.clear()

    def is_down(self, name: str) -> bool:
        """True if the site is currently crashed."""
        return name in self._down

    def set_partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Partition the network into the given groups of sites.

        Sites in different groups cannot exchange messages until
        :meth:`heal_partition` is called.  Sites not mentioned keep full
        connectivity with every group (useful for partial partitions).
        """
        self._partition = {}
        for group_id, group in enumerate(groups):
            for name in group:
                self._check(name)
                self._partition[name] = group_id
        self._route_cache.clear()

    def heal_partition(self) -> None:
        """Remove any active partition."""
        self._partition = {}
        self._route_cache.clear()

    def partitioned(self, a: str, b: str) -> bool:
        """True if an active partition separates *a* and *b*."""
        if not self._partition:
            return False
        group_a = self._partition.get(a)
        group_b = self._partition.get(b)
        if group_a is None or group_b is None:
            return False
        return group_a != group_b

    # -- reachability and path cost ----------------------------------------------

    def can_communicate(self, a: str, b: str) -> bool:
        """True if a message from *a* can currently reach *b*."""
        try:
            self.path(a, b)
        except NoRouteError:
            return False
        return True

    def path(self, a: str, b: str) -> List[str]:
        """Lowest-latency path from *a* to *b* given current failures/partitions."""
        self._check(a)
        self._check(b)
        if self.is_down(a) or self.is_down(b):
            raise NoRouteError(f"site down on path {a!r} -> {b!r}")
        if self.partitioned(a, b):
            raise NoRouteError(f"{a!r} and {b!r} are in different partitions")
        if a == b:
            return [a]
        usable = self._graph.subgraph(
            [node for node in self._graph.nodes if node not in self._down])
        try:
            return nx.shortest_path(
                usable, a, b, weight=lambda u, v, data: data["spec"].latency)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(f"no path from {a!r} to {b!r}") from exc

    def path_cost(self, a: str, b: str, size_bytes: int) -> Tuple[float, int, float]:
        """(transfer seconds, hop count, worst loss rate) for a message of *size_bytes*.

        The route itself is memoised per (source, destination): transports
        call this once per message, and above a few hundred sites the
        per-message shortest-path search is the simulation's real hot path.
        Only the route (its link specs) is cached; the per-link cost sum is
        re-evaluated per call in exactly the pre-cache order, so cached and
        uncached calls produce bit-identical transfer times.
        """
        cached = self._route_cache.get((a, b))
        if cached is None:
            # Fast-path guards still apply on a cache miss: path() performs
            # the down/partition checks and raises before anything is cached.
            route = self.path(a, b)
            specs = tuple(self._graph.edges[u, v]["spec"]
                          for u, v in zip(route, route[1:]))
            if len(self._route_cache) >= self._ROUTE_CACHE_MAX:
                self._route_cache.clear()
            self._route_cache[(a, b)] = specs
        else:
            # Cached routes are only valid while routing state is unchanged
            # (mutations clear the cache); the per-pair checks stay per-call.
            if self.is_down(a) or self.is_down(b):
                raise NoRouteError(f"site down on path {a!r} -> {b!r}")
            if self.partitioned(a, b):
                raise NoRouteError(f"{a!r} and {b!r} are in different partitions")
            specs = cached
        total = 0.0
        loss = 0.0
        for spec in specs:
            total += spec.latency
            if spec.bandwidth > 0:
                total += size_bytes / spec.bandwidth
            loss = max(loss, spec.loss_rate)
        return total, len(specs), loss

    def all_pairs_latency(self) -> Dict[str, Dict[str, float]]:
        """Shortest-path pure latency (no bandwidth term) between all site pairs.

        Computed on the **full** graph, ignoring down sites and partitions:
        failures only remove routes, so the healthy-network latency is a
        valid lower bound on when any message sent now could arrive — which
        is exactly what conservative shard clock synchronisation needs.
        Unreachable pairs are simply absent from the inner mappings.
        """
        latency: Dict[str, Dict[str, float]] = {}
        iterator = nx.all_pairs_dijkstra_path_length(
            self._graph, weight=lambda u, v, data: data["spec"].latency)
        for source, reachable in iterator:
            latency[source] = dict(reachable)
        return latency

    # -- internals -----------------------------------------------------------------

    def _check(self, name: str) -> None:
        if name not in self._graph:
            raise UnknownSiteError(f"unknown site {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __repr__(self) -> str:
        return (f"Topology({self._graph.number_of_nodes()} sites, "
                f"{self._graph.number_of_edges()} links, down={sorted(self._down)})")


# ---------------------------------------------------------------------------
# Canned topologies used throughout tests, examples and benchmarks
# ---------------------------------------------------------------------------

def lan(site_names: Sequence[str], latency: float = 0.002,
        bandwidth: float = 1_250_000.0, loss_rate: float = 0.0) -> Topology:
    """A fully connected LAN of the given sites (the paper's basic setting)."""
    topo = Topology()
    for name in site_names:
        topo.add_site(name)
    spec = LinkSpec(latency=latency, bandwidth=bandwidth, loss_rate=loss_rate)
    names = list(site_names)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            topo.add_link(a, b, spec)
    return topo


def two_clusters(cluster_a: Sequence[str], cluster_b: Sequence[str],
                 wan_latency: float = 0.090, wan_bandwidth: float = 250_000.0,
                 lan_latency: float = 0.002) -> Topology:
    """Two LANs joined by one slow WAN link — the Tromsø/Cornell configuration."""
    topo = Topology()
    for name in list(cluster_a) + list(cluster_b):
        topo.add_site(name)
    lan_spec = LinkSpec(latency=lan_latency)
    for cluster in (list(cluster_a), list(cluster_b)):
        for i, a in enumerate(cluster):
            for b in cluster[i + 1:]:
                topo.add_link(a, b, lan_spec)
    gateway_a, gateway_b = cluster_a[0], cluster_b[0]
    topo.add_link(gateway_a, gateway_b,
                  LinkSpec(latency=wan_latency, bandwidth=wan_bandwidth))
    return topo


def ring(site_names: Sequence[str], latency: float = 0.005,
         bandwidth: float = 1_250_000.0) -> Topology:
    """A ring of sites; used by itinerary and rear-guard experiments."""
    topo = Topology()
    names = list(site_names)
    for name in names:
        topo.add_site(name)
    spec = LinkSpec(latency=latency, bandwidth=bandwidth)
    for a, b in zip(names, names[1:] + names[:1]):
        if a != b:
            topo.add_link(a, b, spec)
    return topo


def star(hub: str, leaves: Sequence[str], latency: float = 0.003,
         bandwidth: float = 1_250_000.0) -> Topology:
    """A hub-and-spoke topology; used by the StormCast sensor network."""
    topo = Topology()
    topo.add_site(hub)
    spec = LinkSpec(latency=latency, bandwidth=bandwidth)
    for leaf in leaves:
        topo.add_site(leaf)
        topo.add_link(hub, leaf, spec)
    return topo


def switched_fabric(host_names: Sequence[str], hosts_per_switch: int = 50,
                    host_latency: float = 0.001, trunk_latency: float = 0.001,
                    bandwidth: float = 1_250_000.0,
                    switch_prefix: str = "sw") -> Topology:
    """A switched LAN: hosts behind rack switches, switches fully meshed.

    ``lan()`` models the paper's LAN as a full mesh, which is O(V^2) links —
    at 2,000 sites that is two million edges and routing becomes the
    bottleneck before any agent runs.  A switched fabric is the same
    physical reality (every host can reach every host in one or two switch
    hops) with O(V) edges: consecutive *host_names* are grouped
    ``hosts_per_switch`` to a rack, each host links to its rack switch, and
    the switches form a small full mesh.  Same-rack traffic costs
    ``2 * host_latency``; cross-rack traffic adds one ``trunk_latency``.

    The switch nodes (``sw00``, ``sw01``, ...) are ordinary topology sites —
    a kernel will create (agent-less) sites for them — so callers that
    launch agents should launch on *host_names*, not on ``topology.sites()``.
    """
    if hosts_per_switch < 1:
        raise ValueError(f"hosts_per_switch must be >= 1, got {hosts_per_switch}")
    topo = Topology()
    hosts = list(host_names)
    switches = []
    host_spec = LinkSpec(latency=host_latency, bandwidth=bandwidth)
    for index, host in enumerate(hosts):
        rack = index // hosts_per_switch
        if rack == len(switches):
            switch = f"{switch_prefix}{rack:02d}"
            topo.add_site(switch)
            switches.append(switch)
        topo.add_site(host)
        topo.add_link(host, switches[rack], host_spec)
    trunk_spec = LinkSpec(latency=trunk_latency, bandwidth=bandwidth)
    for i, a in enumerate(switches):
        for b in switches[i + 1:]:
            topo.add_link(a, b, trunk_spec)
    return topo


def random_topology(n_sites: int, edge_probability: float = 0.3,
                    seed: Optional[int] = None, latency_range: Tuple[float, float] = (0.002, 0.020),
                    bandwidth: float = 1_250_000.0) -> Topology:
    """A connected Erdős–Rényi-style topology used by the diffusion experiment (E2)."""
    rng = random.Random(seed)
    names = [f"site{i:02d}" for i in range(n_sites)]
    topo = Topology()
    for name in names:
        topo.add_site(name)
    # Guarantee connectivity with a random spanning chain, then sprinkle edges.
    shuffled = names[:]
    rng.shuffle(shuffled)
    for a, b in zip(shuffled, shuffled[1:]):
        spec = LinkSpec(latency=rng.uniform(*latency_range), bandwidth=bandwidth)
        topo.add_link(a, b, spec)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if rng.random() < edge_probability:
                spec = LinkSpec(latency=rng.uniform(*latency_range), bandwidth=bandwidth)
                topo.add_link(a, b, spec)
    return topo
