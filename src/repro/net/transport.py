"""Transport abstraction: how messages move between sites.

The paper's prototype had three implementations of the ``rexec`` mechanism:
UNIX ``rsh``, Tcl/TCP, and Tcl/Horus.  Here the analogous layer is the
:class:`Transport`: the kernel hands it a :class:`~repro.net.message.Message`
and the transport decides how long delivery takes (setup + latency + bytes /
bandwidth), whether the message is lost (link loss, site crash, partition)
and finally invokes the destination site's handler.

On top of the raw point-to-point path sits the **delivery fabric**: a
per-destination :class:`Outbox` that coalesces batchable messages (courier
folder deliveries, monitor status reports, rear-guard release and relaunch
traffic) addressed to the same site within a configurable flush window into
one batched wire message.  The batch pays one framing header and one setup
delay for the whole group — this is where batching pays, exactly as the
paper's couriers save bandwidth by shipping only the payload folder instead
of the whole agent.  Batching is off by default (``batch_window=0``); the
kernel enables it from ``KernelConfig.delivery_batch_window``.

The fabric is *adaptive*: besides the flush window, an outbox ships early
the moment it holds ``batch_max_messages`` messages or
``batch_max_bytes`` of queued payload (a hot pair never waits out the
window once the batch is full), and with ``batch_deadline`` set the window
*slides* — each new message extends the flush by the pair's window to keep
coalescing a burst, but never past ``first message + batch_deadline``.
Every flush is recorded in ``NetworkStats.flush_causes`` under the trigger
that fired it (``window`` / ``size`` / ``bytes`` / ``deadline`` /
``reconfigure`` / ``partition`` / ``manual``).

Window sizing itself is delegated to the flow-control layer
(:mod:`repro.flow`): a per-(source, destination)
:class:`~repro.flow.controller.FlowController` watches each pair's
arrival rate (EWMA, fed from every ``post``) and — when adaptive mode is
on (``window_max > 0``) — sizes that pair's window between
``window_min``/``window_max`` so hot pairs get tight windows and trickle
pairs wide ones, replacing the single global knob.  Per-pair window/rate
telemetry is published through ``NetworkStats.flow_windows``.

Concrete transports: :class:`~repro.net.rsh.RshTransport`,
:class:`~repro.net.tcp.TcpTransport` and
:class:`~repro.net.horus.HorusTransport`.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import NoRouteError, SiteDownError, TransportError
from repro.core.timing import ScheduledEvent, Scheduler
from repro.flow import FlowController
from repro.net.message import Message, MessageKind
from repro.net.stats import NetworkStats
from repro.net.topology import Topology

__all__ = ["Transport", "Outbox", "DeliveryHandler", "BATCHABLE_KINDS"]

#: a site-side callback invoked with each delivered message
DeliveryHandler = Callable[[Message], None]

#: message kinds the delivery fabric may coalesce: payload traffic whose
#: semantics are per-folder, not per-wire-message.  Ordinary agent
#: transfers are never batched — a migration is latency-sensitive and its
#: loss semantics (rear guards) are per-agent.  Rear-guard *protection*
#: traffic (release notices, snapshot relaunches) is batchable: releases
#: are fire-and-forget bookkeeping and a relaunch already sits behind a
#: conservative timeout, so neither cares about a flush window of latency.
BATCHABLE_KINDS = (MessageKind.FOLDER_DELIVERY, MessageKind.STATUS,
                   MessageKind.FT_RELEASE, MessageKind.FT_RELAUNCH)


class Outbox:
    """Pending batchable messages for one (source, destination) pair.

    The first message to enter an empty outbox arms a flush event
    ``batch_window`` seconds out; everything posted to the same pair before
    the flush rides in the same batch.  The outbox also tracks when it was
    first filled and how much payload it holds, so the adaptive triggers
    (size / byte threshold, hard deadline) can fire without re-scanning.
    """

    __slots__ = ("source", "destination", "messages", "flush_event",
                 "first_queued_at", "queued_body_bytes")

    def __init__(self, source: str, destination: str):
        self.source = source
        self.destination = destination
        self.messages: List[Message] = []
        #: the armed flush event (None once flushed or dropped)
        self.flush_event: Optional[ScheduledEvent] = None
        #: when the first pending message entered (None while empty)
        self.first_queued_at: Optional[float] = None
        #: payload bytes (excluding framing) currently queued
        self.queued_body_bytes: int = 0

    def __len__(self) -> int:
        return len(self.messages)

    def __repr__(self) -> str:
        return (f"Outbox({self.source}->{self.destination}, "
                f"{len(self.messages)} pending)")


class Transport(abc.ABC):
    """Base class for all transports.

    Subclasses customise :meth:`setup_delay` (per-message connection /
    process start-up cost) and may override :meth:`on_site_down` to drop
    cached state (e.g. TCP connections) — overrides must call
    ``super().on_site_down`` so the delivery fabric's pending outboxes are
    dropped too.
    """

    #: human-readable transport name, used in benchmark output
    name = "abstract"

    def __init__(self, loop: Scheduler, topology: Topology,
                 stats: Optional[NetworkStats] = None,
                 rng: Optional[random.Random] = None):
        self.loop = loop
        self.topology = topology
        self.stats = stats if stats is not None else NetworkStats()
        self.rng = rng if rng is not None else random.Random(0)
        self._handlers: Dict[str, DeliveryHandler] = {}
        #: per-destination window sizing (repro.flow); also holds the
        #: fabric's base flush window (0 = fabric off)
        self.flow = FlowController()
        #: message kinds the fabric may coalesce
        self.batch_kinds: Tuple[str, ...] = BATCHABLE_KINDS
        #: flush early once an outbox holds this many messages (0 = no limit)
        self.batch_max_messages: int = 0
        #: flush early once an outbox queues this many payload bytes (0 = no limit)
        self.batch_max_bytes: int = 0
        #: with > 0, the window slides (each post re-arms the flush
        #: ``batch_window`` out) but never past first-message + deadline
        self.batch_deadline: float = 0.0
        #: pending outboxes keyed by (source, destination)
        self._outboxes: Dict[Tuple[str, str], Outbox] = {}
        #: when True, per-message setup delays serialize at the source (one
        #: rsh fork / connection handshake at a time), which is the cost the
        #: fabric amortises; off by default to preserve the historical
        #: infinitely-parallel-source model
        self.serialize_setup: bool = False
        self._source_busy_until: Dict[str, float] = {}
        #: shard-boundary adapter (repro.shard); when set, messages whose
        #: destination lives on another shard are handed to that shard's
        #: event loop instead of being scheduled locally
        self.boundary = None
        #: the owning kernel's tracer (repro.obs); set by the kernel right
        #: after construction.  None (standalone transports, tests) and a
        #: disabled tracer both keep the fabric span-free.
        self.obs = None

    # -- endpoint registration -------------------------------------------------

    def register_endpoint(self, site_name: str, handler: DeliveryHandler) -> None:
        """Attach the per-site delivery handler (the kernel does this per site)."""
        self._handlers[site_name] = handler

    def unregister_endpoint(self, site_name: str) -> None:
        """Detach a site (e.g. permanently removed)."""
        self._handlers.pop(site_name, None)

    # -- the cost knob each transport provides -----------------------------------

    @abc.abstractmethod
    def setup_delay(self, message: Message) -> float:
        """Per-message setup cost in seconds (process start, connection, ...)."""

    @property
    def batch_window(self) -> float:
        """The fabric's base flush window (0 = fabric off).

        Owned by the flow controller — in adaptive mode it is only the seed
        for pairs with no traffic history; set it via
        :meth:`configure_batching`.
        """
        return self.flow.base_window

    def on_site_down(self, site_name: str) -> None:
        """Hook invoked by the kernel when a site crashes.

        The base implementation drops every pending outbox that touches the
        crashed site (messages still queued at a crashed source die with it;
        messages bound for a crashed destination are counted as drops) and
        resets the flow-control state of those pairs — the observed rates
        described traffic that died with the crash, so a recovered site
        starts from the seed window, with no stale flush events.
        Subclasses overriding this must call ``super().on_site_down``.
        """
        for key in [key for key in self._outboxes if site_name in key]:
            self._drop_outbox(key)
        self._source_busy_until.pop(site_name, None)
        self.flow.reset_site(site_name)
        self.stats.reset_flow_for_site(site_name)

    def on_site_up(self, site_name: str) -> None:
        """Hook invoked by the kernel when a site recovers."""

    # -- the delivery fabric -----------------------------------------------------

    def configure_batching(self, batch_window: float,
                           batch_kinds: Optional[Tuple[str, ...]] = None,
                           serialize_setup: Optional[bool] = None,
                           max_messages: Optional[int] = None,
                           max_bytes: Optional[int] = None,
                           deadline: Optional[float] = None,
                           window_min: Optional[float] = None,
                           window_max: Optional[float] = None,
                           target_batch: Optional[int] = None,
                           ewma_alpha: Optional[float] = None) -> None:
        """Turn the delivery fabric on/off and tune what/how it coalesces.

        ``max_messages`` / ``max_bytes`` flush an outbox early the moment it
        fills (0 disables the threshold); ``deadline`` > 0 makes the window
        slide with traffic, capped at first-message + deadline.
        ``window_max`` > 0 turns on adaptive per-destination windows
        (:mod:`repro.flow`): each pair's window is sized from its observed
        arrival rate to coalesce about ``target_batch`` messages, clamped
        into ``[window_min, window_max]``; ``ewma_alpha`` tunes how fast
        the rate estimate tracks.  Outboxes armed under the previous
        configuration are reconciled immediately: shrinking or zeroing the
        window (or tightening a threshold) never leaves messages waiting
        out a flush event armed under the old rules.
        """
        if batch_window < 0:
            raise TransportError(f"batch window must be >= 0, got {batch_window}")
        if max_messages is not None and max_messages < 0:
            raise TransportError(f"max_messages must be >= 0, got {max_messages}")
        if max_bytes is not None and max_bytes < 0:
            raise TransportError(f"max_bytes must be >= 0, got {max_bytes}")
        if deadline is not None and deadline < 0:
            raise TransportError(f"deadline must be >= 0, got {deadline}")
        if window_min is not None and window_min < 0:
            raise TransportError(f"window_min must be >= 0, got {window_min}")
        if window_max is not None and window_max < 0:
            raise TransportError(f"window_max must be >= 0, got {window_max}")
        effective_min = self.flow.window_min if window_min is None else window_min
        effective_max = self.flow.window_max if window_max is None else window_max
        if effective_min > 0 >= effective_max:
            raise TransportError(
                f"window_min {effective_min} requires a positive window_max "
                f"(adaptive windows are off while window_max is 0)")
        if effective_max > 0 and effective_min > effective_max:
            raise TransportError(f"window_min {effective_min} must not exceed "
                                 f"window_max {effective_max}")
        if target_batch is not None and target_batch <= 0:
            raise TransportError(f"target_batch must be > 0, got {target_batch}")
        if ewma_alpha is not None and not 0.0 < ewma_alpha <= 1.0:
            raise TransportError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.flow.configure(base_window=batch_window, window_min=window_min,
                            window_max=window_max, target_batch=target_batch,
                            alpha=ewma_alpha)
        if batch_kinds is not None:
            self.batch_kinds = tuple(batch_kinds)
        if serialize_setup is not None:
            self.serialize_setup = serialize_setup
        if max_messages is not None:
            self.batch_max_messages = int(max_messages)
        if max_bytes is not None:
            self.batch_max_bytes = int(max_bytes)
        if deadline is not None:
            self.batch_deadline = float(deadline)
        self._reconcile_outboxes()

    def _reconcile_outboxes(self) -> None:
        """Re-apply the current batching rules to already-armed outboxes.

        Reconfiguring used to leave stale flush events running on the old
        window: zeroing the window stranded pending messages until the old
        (possibly distant) flush fired, and shrinking it silently kept the
        old, longer wait.  Each pending outbox is now either flushed at once
        (fabric off, threshold already exceeded, or its recomputed due time
        has passed) or re-armed at the due time the new rules imply.
        """
        for key in list(self._outboxes):
            outbox = self._outboxes.get(key)
            if outbox is None:
                continue
            if not outbox.messages:
                self._outboxes.pop(key)
                if outbox.flush_event is not None:
                    outbox.flush_event.cancel()
                    outbox.flush_event = None
                continue
            if (self.batch_window <= 0
                    or any(message.kind not in self.batch_kinds
                           for message in outbox.messages)
                    or self._threshold_cause(outbox) is not None):
                self._flush_outbox(key, cause="reconfigure")
                continue
            first = outbox.first_queued_at if outbox.first_queued_at is not None \
                else self.loop.now
            window = self.flow.window_for(key)
            due, cause = first + window, "window"
            if self.batch_deadline > 0:
                # Sliding mode: the window runs from the *last* post (so a
                # reconfigure with unchanged rules re-arms the flush where
                # it already was, not in the past), capped at the deadline.
                last = outbox.messages[-1].sent_at
                cap = first + self.batch_deadline
                due, cause = last + window, "window"
                if due >= cap:
                    due, cause = cap, "deadline"
            if due <= self.loop.now:
                self._flush_outbox(key, cause="reconfigure")
            else:
                self._arm_flush(outbox, key, due, cause=cause)

    def _threshold_cause(self, outbox: Outbox) -> Optional[str]:
        """The early-flush threshold *outbox* has reached, if any."""
        if 0 < self.batch_max_messages <= len(outbox.messages):
            return "size"
        if 0 < self.batch_max_bytes <= outbox.queued_body_bytes:
            return "bytes"
        return None

    def _arm_flush(self, outbox: Outbox, key: Tuple[str, str], due: float,
                   cause: str) -> None:
        """(Re-)arm an outbox's flush event to fire at absolute time *due*."""
        if outbox.flush_event is not None:
            if abs(outbox.flush_event.time - due) <= 1e-12:
                return
            outbox.flush_event.cancel()
        outbox.flush_event = self.loop.schedule_at(
            due, lambda: self._flush_outbox(key, cause=cause),
            label=f"{self.name}-flush-{outbox.source}-{outbox.destination}")

    def post(self, message: Message) -> Optional[ScheduledEvent]:
        """Hand *message* to the delivery fabric.

        Batchable kinds are coalesced into the per-destination outbox when
        the fabric is enabled; everything else (and everything when
        ``batch_window`` is 0) goes straight to :meth:`send`.  Returns the
        event that will move the message (its own delivery, or the outbox
        flush it joined), or ``None`` when it was dropped immediately.  An
        outbox reaching a size or byte threshold ships on the spot — the
        returned event is then the batch's delivery event.
        """
        if self.batch_window <= 0 or message.kind not in self.batch_kinds:
            return self.send(message)
        source, destination = message.source, message.destination
        if source not in self.topology:
            raise TransportError(f"unknown source site {source!r}")
        if destination not in self.topology:
            raise TransportError(f"unknown destination site {destination!r}")
        if self._unroutable(source, destination):
            # Unroutable right now: take the immediate path so the caller
            # gets the same refusal (None) and the same drop accounting as
            # with batching off, instead of an "accepted" that the flush is
            # already known to drop.
            return self.send(message)
        key = (source, destination)
        outbox = self._outboxes.get(key)
        if outbox is None:
            outbox = self._outboxes[key] = Outbox(source, destination)
        message.sent_at = self.loop.now
        if outbox.first_queued_at is None:
            outbox.first_queued_at = self.loop.now
        outbox.messages.append(message)
        outbox.queued_body_bytes += message.body_bytes()
        if self.flow.adaptive:
            # observe() just re-derived (and clamped) the pair's window.
            window = self.flow.observe(key, self.loop.now,
                                       message.body_bytes()).window
        else:
            # Fixed mode: no per-pair estimation — the EWMA would never be
            # read, and this is the fabric's per-post hot path.
            window = self.flow.base_window
        threshold = self._threshold_cause(outbox)
        if threshold is not None:
            # The pair is hot and the batch is full: ship now rather than
            # waiting out the window.
            return self._flush_outbox(key, cause=threshold)
        if self.batch_deadline > 0:
            # Sliding window: this post extends the flush, capped at the
            # hard deadline measured from the first queued message.
            cap = outbox.first_queued_at + self.batch_deadline
            due = self.loop.now + window
            if due < cap:
                self._arm_flush(outbox, key, due, cause="window")
            else:
                self._arm_flush(outbox, key, cap, cause="deadline")
        elif self.flow.adaptive:
            # The pair's window tracks its rate, so every post re-prices
            # the flush: due is first-message + the *current* window.  A
            # window tightened below the time already waited ships now.
            due = outbox.first_queued_at + window
            if due <= self.loop.now:
                return self._flush_outbox(key, cause="window")
            self._arm_flush(outbox, key, due, cause="window")
        elif outbox.flush_event is None:
            self._arm_flush(outbox, key, self.loop.now + window,
                            cause="window")
        return outbox.flush_event

    def _flush_outbox(self, key: Tuple[str, str],
                      cause: str = "window") -> Optional[ScheduledEvent]:
        """Ship an outbox's pending messages as one batched wire message."""
        outbox = self._outboxes.pop(key, None)
        if outbox is None or not outbox.messages:
            return None
        if outbox.flush_event is not None:
            outbox.flush_event.cancel()
            outbox.flush_event = None
        self.stats.record_flush(cause)
        if self.flow.adaptive:
            # Publish the pair's window/rate telemetry once per flush (not
            # per post — that would allocate on the fabric's hot path).
            state = self.flow.state(key)
            if state is not None:
                self.stats.record_flow(outbox.source, outbox.destination,
                                       self.flow.window_for(key),
                                       state.estimator.message_rate,
                                       state.estimator.bytes_rate)
        messages = outbox.messages
        if len(messages) == 1:
            # No coalescing happened: ship the original message unwrapped so
            # accounting keeps its true kind and no envelope cost is paid.
            return self.send(messages[0])
        body = sum(message.body_bytes() for message in messages)
        batch = Message(
            source=outbox.source,
            destination=outbox.destination,
            kind=MessageKind.BATCH,
            payload={"messages": messages},
            declared_size=body,
        )
        event = self.send(batch)
        obs = self.obs
        if obs is not None and obs.active:
            # One span per shipped envelope on the fabric's pseudo-trace;
            # start is when the oldest coalesced message entered the outbox,
            # so the span's width is the window the batch actually waited.
            from repro.obs import infra_trace_id
            obs.record(
                infra_trace_id("fabric", f"{outbox.source}->{outbox.destination}"),
                "fabric-flush",
                obs.next_key(outbox.source),
                start=min(message.sent_at for message in messages),
                end=self.loop.now, kind="net", site=outbox.source,
                source=outbox.source, destination=outbox.destination,
                attrs={"cause": cause, "messages": len(messages),
                       "bytes": body, "delivered": event is not None})
        if event is not None:
            self.stats.record_batch(
                len(messages),
                (len(messages) - 1) * Message.HEADER_BYTES)
        else:
            # send() recorded one drop for the envelope; the other coalesced
            # messages are lost with it, and the loss ledger counts logical
            # messages (matching _drop_outbox).
            for message in messages[1:]:
                self.stats.record_drop(message.source, message.destination)
        return event

    def flush_outboxes(self, only_unroutable: bool = False,
                       cause: str = "manual") -> int:
        """Flush pending outboxes now (partition install, shutdown, tests).

        With ``only_unroutable=True`` (what :meth:`Kernel.partition` uses)
        only the pairs the topology can no longer route are flushed — their
        messages are dropped by :meth:`send` with normal drop accounting —
        while still-routable outboxes keep coalescing undisturbed.  Returns
        the number of outboxes flushed.
        """
        flushed = 0
        for key in list(self._outboxes):
            if only_unroutable and not self._unroutable(*key):
                continue
            self._flush_outbox(key, cause=cause)
            flushed += 1
        return flushed

    def _unroutable(self, source: str, destination: str) -> bool:
        """True when the topology cannot currently route the pair.

        The single predicate behind both the post-time refusal and the
        selective partition flush, so the two can never disagree about
        which outboxes are stranded.
        """
        return (self.topology.is_down(source)
                or self.topology.is_down(destination)
                or self.topology.partitioned(source, destination))

    def _drop_outbox(self, key: Tuple[str, str]) -> None:
        """Discard a pending outbox, counting each queued message as a drop."""
        outbox = self._outboxes.pop(key, None)
        if outbox is None:
            return
        if outbox.flush_event is not None:
            outbox.flush_event.cancel()
            outbox.flush_event = None
        for message in outbox.messages:
            self.stats.record_drop(message.source, message.destination)

    def pending_outbox_messages(self) -> int:
        """Messages currently queued in the fabric (introspection for tests)."""
        return sum(len(outbox) for outbox in self._outboxes.values())

    def flow_telemetry(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Per-(source, destination) window/rate telemetry (see repro.flow)."""
        return self.flow.telemetry()

    # -- sending --------------------------------------------------------------------

    def send(self, message: Message) -> Optional[ScheduledEvent]:
        """Queue *message* for delivery.

        Returns the scheduled delivery event, or ``None`` when the message
        was dropped immediately (source down, no route, random loss).  The
        caller never gets an exception for in-flight loss — exactly like a
        real datagram network — but sending *from* an unknown site is a
        programming error and raises.
        """
        source, destination = message.source, message.destination
        if source not in self.topology:
            raise TransportError(f"unknown source site {source!r}")
        if destination not in self.topology:
            raise TransportError(f"unknown destination site {destination!r}")

        size = message.size_bytes()
        message.sent_at = self.loop.now
        self.stats.record_send(source, destination, message.kind, size)

        if self.topology.is_down(source):
            # A crashed site cannot send; count the drop and stop.
            self.stats.record_drop(source, destination)
            return None

        try:
            transfer, hops, loss = self.topology.path_cost(source, destination, size)
        except (NoRouteError, SiteDownError):
            self.stats.record_drop(source, destination)
            return None

        if loss > 0 and self.rng.random() < loss:
            self.stats.record_drop(source, destination)
            return None

        message.hops = hops
        setup = self.setup_delay(message)
        if self.serialize_setup:
            # The source can only run one setup at a time (fork one rsh,
            # perform one handshake); later messages queue behind it.  This
            # is the serial cost a batch envelope pays once instead of N
            # times.
            now = self.loop.now
            start = max(now, self._source_busy_until.get(source, now))
            self._source_busy_until[source] = start + setup
            delay = (start - now) + setup + transfer
        else:
            delay = setup + transfer
        if self.boundary is not None and self.boundary.is_remote(destination):
            # Cross-shard: hand over at send time so the arrival lands on
            # the owning shard's loop.  Doing this here (rather than at the
            # local delivery event) is what makes the conservative clock
            # sync safe: the arrival timestamp is fixed the moment the
            # message leaves, before any horizon beyond it can be granted.
            return self.boundary.dispatch(message, delay)
        return self.loop.schedule(delay, lambda: self._deliver(message),
                                  label=f"{self.name}-deliver-{message.message_id}")

    # -- delivery --------------------------------------------------------------------

    def _deliver(self, message: Message) -> None:
        destination = message.destination
        if self.topology.is_down(destination) or self.topology.partitioned(
                message.source, destination):
            # The destination crashed (or a partition formed) while the
            # message was in flight.
            self._record_in_flight_loss(message)
            return
        handler = self._handlers.get(destination)
        if handler is None:
            self._record_in_flight_loss(message)
            return
        message.delivered_at = self.loop.now
        size = message.size_bytes()
        self.stats.record_delivery(size, self.loop.now - message.sent_at)
        if message.kind in MessageKind.MIGRATION_KINDS:
            self.stats.record_migration(size)
        elif message.kind == MessageKind.BATCH:
            # Migration accounting is per agent snapshot, not per envelope:
            # a coalesced relaunch still counts as one migration.
            for sub in message.payload.get("messages", ()):
                if sub.kind in MessageKind.MIGRATION_KINDS:
                    self.stats.record_migration(sub.size_bytes())
        handler(message)

    def _record_in_flight_loss(self, message: Message) -> None:
        """Count an in-flight loss: one drop per logical message.

        A lost batch envelope takes every coalesced message with it, and
        the loss ledger counts logical messages (matching
        :meth:`_drop_outbox`): one drop for the envelope itself plus one
        per additional coalesced message.
        """
        self.stats.record_drop(message.source, message.destination)
        if message.kind == MessageKind.BATCH:
            for sub in message.payload.get("messages", ())[1:]:
                self.stats.record_drop(sub.source, sub.destination)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(endpoints={len(self._handlers)})"
