"""Transport abstraction: how messages move between sites.

The paper's prototype had three implementations of the ``rexec`` mechanism:
UNIX ``rsh``, Tcl/TCP, and Tcl/Horus.  Here the analogous layer is the
:class:`Transport`: the kernel hands it a :class:`~repro.net.message.Message`
and the transport decides how long delivery takes (setup + latency + bytes /
bandwidth), whether the message is lost (link loss, site crash, partition)
and finally invokes the destination site's handler.

Concrete transports: :class:`~repro.net.rsh.RshTransport`,
:class:`~repro.net.tcp.TcpTransport` and
:class:`~repro.net.horus.HorusTransport`.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, Optional

from repro.core.errors import NoRouteError, SiteDownError, TransportError
from repro.net.message import Message
from repro.net.simclock import Event, EventLoop
from repro.net.stats import NetworkStats
from repro.net.topology import Topology

__all__ = ["Transport", "DeliveryHandler"]

#: a site-side callback invoked with each delivered message
DeliveryHandler = Callable[[Message], None]


class Transport(abc.ABC):
    """Base class for all transports.

    Subclasses customise :meth:`setup_delay` (per-message connection /
    process start-up cost) and may override :meth:`on_site_down` to drop
    cached state (e.g. TCP connections).
    """

    #: human-readable transport name, used in benchmark output
    name = "abstract"

    def __init__(self, loop: EventLoop, topology: Topology,
                 stats: Optional[NetworkStats] = None,
                 rng: Optional[random.Random] = None):
        self.loop = loop
        self.topology = topology
        self.stats = stats if stats is not None else NetworkStats()
        self.rng = rng if rng is not None else random.Random(0)
        self._handlers: Dict[str, DeliveryHandler] = {}

    # -- endpoint registration -------------------------------------------------

    def register_endpoint(self, site_name: str, handler: DeliveryHandler) -> None:
        """Attach the per-site delivery handler (the kernel does this per site)."""
        self._handlers[site_name] = handler

    def unregister_endpoint(self, site_name: str) -> None:
        """Detach a site (e.g. permanently removed)."""
        self._handlers.pop(site_name, None)

    # -- the cost knob each transport provides -----------------------------------

    @abc.abstractmethod
    def setup_delay(self, message: Message) -> float:
        """Per-message setup cost in seconds (process start, connection, ...)."""

    def on_site_down(self, site_name: str) -> None:
        """Hook invoked by the kernel when a site crashes."""

    def on_site_up(self, site_name: str) -> None:
        """Hook invoked by the kernel when a site recovers."""

    # -- sending --------------------------------------------------------------------

    def send(self, message: Message) -> Optional[Event]:
        """Queue *message* for delivery.

        Returns the scheduled delivery event, or ``None`` when the message
        was dropped immediately (source down, no route, random loss).  The
        caller never gets an exception for in-flight loss — exactly like a
        real datagram network — but sending *from* an unknown site is a
        programming error and raises.
        """
        source, destination = message.source, message.destination
        if source not in self.topology:
            raise TransportError(f"unknown source site {source!r}")
        if destination not in self.topology:
            raise TransportError(f"unknown destination site {destination!r}")

        size = message.size_bytes()
        message.sent_at = self.loop.now
        self.stats.record_send(source, destination, message.kind, size)

        if self.topology.is_down(source):
            # A crashed site cannot send; count the drop and stop.
            self.stats.record_drop(source, destination)
            return None

        try:
            transfer, hops, loss = self.topology.path_cost(source, destination, size)
        except (NoRouteError, SiteDownError):
            self.stats.record_drop(source, destination)
            return None

        if loss > 0 and self.rng.random() < loss:
            self.stats.record_drop(source, destination)
            return None

        message.hops = hops
        delay = self.setup_delay(message) + transfer
        return self.loop.schedule(delay, lambda: self._deliver(message),
                                  label=f"{self.name}-deliver-{message.message_id}")

    # -- delivery --------------------------------------------------------------------

    def _deliver(self, message: Message) -> None:
        destination = message.destination
        if self.topology.is_down(destination) or self.topology.partitioned(
                message.source, destination):
            # The destination crashed (or a partition formed) while the
            # message was in flight.
            self.stats.record_drop(message.source, destination)
            return
        handler = self._handlers.get(destination)
        if handler is None:
            self.stats.record_drop(message.source, destination)
            return
        message.delivered_at = self.loop.now
        self.stats.record_delivery(message.size_bytes(), self.loop.now - message.sent_at)
        if message.kind == "agent-transfer":
            self.stats.record_migration(message.size_bytes())
        handler(message)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(endpoints={len(self._handlers)})"
