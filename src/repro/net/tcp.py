"""The Tcl/TCP-style transport (paper section 6, second rexec implementation).

"The second uses Tcl/TCP, an extension to Tcl that allows Tcl processes to
set up TCP communication channels."  The important behaviour relative to
``rsh`` is that a connection, once established between two sites, is reused
by later messages, so the setup cost is paid once per (source, destination)
pair rather than once per transfer.  Connections involving a site are torn
down when that site crashes.

Setup and delivery delays are scheduled on the kernel's
:class:`~repro.core.timing.Scheduler`: under the sim backend they are
priced simulated seconds; under ``backend="realtime"`` the same delays
really elapse on the wall clock.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.flow import CostModel
from repro.net.message import Message
from repro.net.transport import Transport

__all__ = ["TcpTransport"]


class TcpTransport(Transport):
    """Point-to-point transport with cached connections."""

    name = "tcp"

    #: three-way-handshake + interpreter channel setup on first contact
    CONNECT_SETUP = 0.040
    #: per-message overhead on an established connection
    ESTABLISHED_SETUP = 0.002

    #: the shared cost-model view: every message pays the per-message base,
    #: and the first contact between a pair additionally pays one sync (the
    #: handshake) — so CONNECT_SETUP = base + sync exactly
    SETUP_COSTS = CostModel(base=ESTABLISHED_SETUP,
                            sync=CONNECT_SETUP - ESTABLISHED_SETUP)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._connections: Set[Tuple[str, str]] = set()
        #: how many times each pair had to (re)connect — visible to benchmarks
        self.connects: Dict[Tuple[str, str], int] = {}

    def setup_delay(self, message: Message) -> float:
        pair = self._pair(message.source, message.destination)
        if pair in self._connections:
            return self.SETUP_COSTS.cost(items=1, syncs=0)
        self._connections.add(pair)
        self.connects[pair] = self.connects.get(pair, 0) + 1
        return self.SETUP_COSTS.cost(items=1, syncs=1)

    def on_site_down(self, site_name: str) -> None:
        """Drop every cached connection that touches the crashed site."""
        super().on_site_down(site_name)  # drop the fabric's pending outboxes
        self._connections = {pair for pair in self._connections if site_name not in pair}

    def connection_count(self) -> int:
        """Number of currently established connections."""
        return len(self._connections)

    def metrics(self) -> Dict[str, int]:
        """Registry source (``kernel.metrics``): connection-reuse telemetry."""
        return {
            "tcp_connections_open": len(self._connections),
            "tcp_connects_total": sum(self.connects.values()),
        }

    @staticmethod
    def _pair(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)
