"""Failure injection: crash/recover schedules, partitions, and random crash models.

Section 5 of the paper assumes "sites in a computer network will fail".
The fault-tolerance experiments (E6, E8) drive the kernel through these
schedules.  A :class:`FailureSchedule` is a declarative list of failure
actions bound to simulated times; :class:`RandomCrasher` crashes random
sites at random times, which is what the rear-guard sweeps use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

__all__ = ["FailureAction", "FailureSchedule", "RandomCrasher"]


class _KernelLike(Protocol):
    """The slice of the kernel interface failure injection needs."""

    def crash_site(self, name: str) -> None: ...
    def recover_site(self, name: str) -> None: ...
    def partition(self, groups: Sequence[Sequence[str]]) -> None: ...
    def heal_partition(self) -> None: ...
    @property
    def loop(self): ...
    def site_names(self) -> List[str]: ...


@dataclass
class FailureAction:
    """One scheduled failure event."""

    at: float
    kind: str                      # "crash" | "recover" | "partition" | "heal"
    site: Optional[str] = None
    groups: Optional[Sequence[Sequence[str]]] = None


@dataclass
class FailureSchedule:
    """A declarative failure schedule applied to a kernel.

    Example::

        schedule = (FailureSchedule()
                    .crash("site02", at=1.5)
                    .recover("site02", at=4.0)
                    .partition([["a", "b"], ["c"]], at=2.0)
                    .heal(at=3.0))
        schedule.install(kernel)
    """

    actions: List[FailureAction] = field(default_factory=list)

    def crash(self, site: str, at: float) -> "FailureSchedule":
        """Crash *site* at simulated time *at*."""
        self.actions.append(FailureAction(at=at, kind="crash", site=site))
        return self

    def recover(self, site: str, at: float) -> "FailureSchedule":
        """Recover *site* at simulated time *at*."""
        self.actions.append(FailureAction(at=at, kind="recover", site=site))
        return self

    def partition(self, groups: Sequence[Sequence[str]], at: float) -> "FailureSchedule":
        """Partition the network into *groups* at time *at*."""
        self.actions.append(FailureAction(at=at, kind="partition", groups=groups))
        return self

    def heal(self, at: float) -> "FailureSchedule":
        """Heal any active partition at time *at*."""
        self.actions.append(FailureAction(at=at, kind="heal"))
        return self

    def install(self, kernel: _KernelLike) -> None:
        """Schedule every action on the kernel's event loop."""
        for action in self.actions:
            kernel.loop.schedule_at(action.at, self._make_callback(kernel, action),
                                    label=f"failure-{action.kind}")

    @staticmethod
    def _make_callback(kernel: _KernelLike, action: FailureAction):
        def fire() -> None:
            if action.kind == "crash":
                kernel.crash_site(action.site)
            elif action.kind == "recover":
                kernel.recover_site(action.site)
            elif action.kind == "partition":
                kernel.partition(action.groups or [])
            elif action.kind == "heal":
                kernel.heal_partition()
            else:  # pragma: no cover - guarded by construction helpers
                raise ValueError(f"unknown failure action {action.kind!r}")
        return fire


class RandomCrasher:
    """Crashes (and optionally recovers) random sites over a time window.

    Parameters
    ----------
    crash_probability:
        Per-site probability of suffering at least one crash in the window.
    window:
        (start, end) simulated-time interval in which crashes may occur.
    recover_after:
        If not None, a crashed site recovers this many seconds later.
    protect:
        Sites that are never crashed (e.g. the home site of an experiment).
    """

    def __init__(self, crash_probability: float, window: Sequence[float],
                 recover_after: Optional[float] = None,
                 protect: Sequence[str] = (), seed: Optional[int] = None):
        if not 0.0 <= crash_probability <= 1.0:
            raise ValueError("crash_probability must be within [0, 1]")
        self.crash_probability = crash_probability
        self.window = (float(window[0]), float(window[1]))
        self.recover_after = recover_after
        self.protect = set(protect)
        self.rng = random.Random(seed)
        #: sites this crasher decided to crash, with their crash times
        self.planned: List[FailureAction] = []

    def build_schedule(self, site_names: Sequence[str]) -> FailureSchedule:
        """Draw the random plan and return it as a :class:`FailureSchedule`."""
        schedule = FailureSchedule()
        start, end = self.window
        for name in site_names:
            if name in self.protect:
                continue
            if self.rng.random() < self.crash_probability:
                at = self.rng.uniform(start, end)
                schedule.crash(name, at=at)
                self.planned.append(FailureAction(at=at, kind="crash", site=name))
                if self.recover_after is not None:
                    schedule.recover(name, at=at + self.recover_after)
        return schedule

    def install(self, kernel: _KernelLike) -> FailureSchedule:
        """Draw a plan against the kernel's sites and install it."""
        schedule = self.build_schedule(kernel.site_names())
        schedule.install(kernel)
        return schedule
