"""EWMA arrival-rate estimation for flow control.

A :class:`RateEstimator` watches one traffic stream (in practice: one
(source, destination) outbox) and maintains exponentially weighted moving
averages of the inter-arrival gap and the per-message payload size.  The
derived ``message_rate`` / ``bytes_rate`` are what the
:class:`~repro.flow.controller.FlowController` sizes batch windows from.

The estimator is deliberately tiny and allocation-free per observation —
it sits on the delivery fabric's per-post hot path.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["RateEstimator"]

#: floor on an observed inter-arrival gap: two posts in the same simulated
#: instant are "infinitely hot", not a division by zero
MIN_GAP = 1e-9


class RateEstimator:
    """EWMA message and byte arrival rates for one traffic stream."""

    __slots__ = ("alpha", "events", "bytes_total", "_last_at", "_mean_gap",
                 "_mean_bytes")

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"EWMA alpha must be in (0, 1], got {alpha}")
        #: EWMA smoothing factor: weight of the newest observation
        self.alpha = alpha
        #: total observations ever fed in
        self.events = 0
        #: total payload bytes ever fed in
        self.bytes_total = 0
        self._last_at: Optional[float] = None
        self._mean_gap: Optional[float] = None
        self._mean_bytes: float = 0.0

    def observe(self, now: float, size_bytes: int = 0) -> None:
        """Feed one arrival at simulated time *now* carrying *size_bytes*."""
        self.events += 1
        self.bytes_total += size_bytes
        if self.events == 1:
            self._mean_bytes = float(size_bytes)
        else:
            self._mean_bytes += self.alpha * (size_bytes - self._mean_bytes)
        if self._last_at is not None:
            gap = max(now - self._last_at, MIN_GAP)
            if self._mean_gap is None:
                self._mean_gap = gap
            else:
                self._mean_gap += self.alpha * (gap - self._mean_gap)
        self._last_at = now

    @property
    def message_rate(self) -> float:
        """Estimated arrivals per simulated second (0.0 until two arrivals)."""
        if self._mean_gap is None:
            return 0.0
        return 1.0 / max(self._mean_gap, MIN_GAP)

    @property
    def bytes_rate(self) -> float:
        """Estimated payload bytes per simulated second."""
        return self.message_rate * self._mean_bytes

    @property
    def mean_bytes(self) -> float:
        """EWMA payload bytes per message."""
        return self._mean_bytes

    def __repr__(self) -> str:
        return (f"RateEstimator({self.events} events, "
                f"{self.message_rate:.3g} msg/s, {self.bytes_rate:.3g} B/s)")
