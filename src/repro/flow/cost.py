"""The shared cost model: one linear price per scarce resource.

Every simulated-time charge in the system is an affine function of three
things: how many items were processed (messages framed, redo records
written), how many payload bytes moved, and how many synchronisation
points were paid (fsyncs, connection handshakes, rsh forks).
:class:`CostModel` captures exactly that, so the WAL's group commit and a
transport's ``setup_delay`` price their resource with the same arithmetic
instead of re-deriving it inline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """A linear price for using a scarce resource.

    ``cost = base * items + per_byte * size_bytes + sync * syncs``, plus an
    optional uniform jitter fraction (the rsh transport's noisy fork).
    All terms default to zero so a model names only the costs its resource
    actually has.
    """

    #: seconds charged per item (one message, one redo record)
    base: float = 0.0
    #: seconds charged per payload byte moved
    per_byte: float = 0.0
    #: seconds charged per synchronisation point (fsync, handshake, fork)
    sync: float = 0.0
    #: uniform noise fraction applied to the priced total (0 = deterministic)
    jitter: float = 0.0

    def cost(self, items: int = 1, size_bytes: int = 0, syncs: int = 1,
             rng: Optional[random.Random] = None) -> float:
        """Price *items* items carrying *size_bytes* bytes over *syncs* syncs."""
        total = self.base * items + self.per_byte * size_bytes + self.sync * syncs
        if self.jitter > 0 and rng is not None:
            total += total * self.jitter * rng.random()
        return total

    def __repr__(self) -> str:
        terms = [f"base={self.base:g}"]
        if self.per_byte:
            terms.append(f"per_byte={self.per_byte:g}")
        if self.sync:
            terms.append(f"sync={self.sync:g}")
        if self.jitter:
            terms.append(f"jitter={self.jitter:g}")
        return f"CostModel({', '.join(terms)})"
