"""The group-commit governor: may batched durable work jump the window?

The durable store's group commit is the disk-side twin of the delivery
fabric's flush window: dirty state coalesces for the cost table's
``commit_window`` simulated seconds, then one batched write + one fsync
makes it durable.  The window itself stays where it always lived — on
:class:`~repro.store.policy.StoreCosts`, read live — and the
:class:`CommitGovernor` owns the one scheduling decision the window alone
gets wrong: a **pending durability barrier**.

An agent blocked on ``wait_until_durable`` (the fault-tolerance layer's
pre-jump checkpoint is the canonical case) gains nothing from further
coalescing — every extra millisecond of window is pure added checkpoint
latency.  With ``piggyback`` enabled the barrier therefore rides the group
commit mechanism instead of waiting for it: the store captures and syncs
the dirty batch immediately (see ``SiteStore.barrier``), and the barrier's
wait collapses from ``window remainder + write + fsync`` to just
``write + fsync``.
"""

from __future__ import annotations

__all__ = ["CommitGovernor"]


class CommitGovernor:
    """Policy for when a site store's group commit may fire early."""

    def __init__(self, piggyback: bool = True):
        #: whether a pending durability barrier commits the batch early
        self.piggyback = bool(piggyback)

    def __repr__(self) -> str:
        return f"CommitGovernor(piggyback={'on' if self.piggyback else 'off'})"
