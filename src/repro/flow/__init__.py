"""Unified flow control and cost modelling (the scarce-resource layer).

The paper treats the network and the disk as the two scarce resources an
agent system must schedule around; before this package the reproduction
priced them with three disconnected ad-hoc models — the delivery fabric's
global batch window, the WAL's flat per-record group commit, and
setup-delay arithmetic scattered through the transports.  ``repro.flow``
is the shared layer all of them now consume:

* :class:`CostModel` — one linear price for using a scarce resource:
  a per-item base latency, a bytes-proportional term, and a per-sync cost
  (an fsync, a connection handshake, an rsh fork).  The transports price
  ``setup_delay`` with it and the WAL prices group commits with it, so
  "what does a byte cost" has exactly one definition per resource.
* :class:`RateEstimator` — an EWMA estimator of per-destination message
  and byte arrival rates, fed from live outbox traffic.
* :class:`FlowController` — per-(source, destination) adaptive batch
  windows derived from those rates: a hot pair fills a batch quickly and
  gets a tight window (bounded latency, still big batches), a trickle
  pair gets a wide one (it needs the time to coalesce anything at all).
  The delivery fabric (:mod:`repro.net.transport`) asks it for every
  outbox's window instead of using one global knob.
* :class:`CommitGovernor` — whether the durable store's group commit may
  fire early: normally dirty state coalesces for the cost table's
  ``commit_window``, but a pending durability barrier (an agent blocked
  on ``wait_until_durable``, e.g. a pre-jump checkpoint) *piggybacks* —
  the in-flight batch commits immediately instead of waiting out the
  window, cutting checkpoint latency on every fault-tolerant hop.

Nothing in here knows about messages, cabinets or sites: the layer is
pure rates, windows and prices, which is what lets the net and store
layers share it.
"""

from repro.flow.controller import FlowController, FlowState
from repro.flow.cost import CostModel
from repro.flow.governor import CommitGovernor
from repro.flow.rates import RateEstimator

__all__ = [
    "CostModel",
    "RateEstimator",
    "FlowController", "FlowState",
    "CommitGovernor",
]
