"""Per-destination adaptive batch windows.

The delivery fabric used to run one global flush window for every
(source, destination) pair — tuned for the hot pair it over-delays the
trickle pairs' coalescing; tuned for the trickle pairs it sits on the hot
pair's full batches.  The :class:`FlowController` replaces the single knob
with a per-pair window derived from observed traffic:

    ideal window = target_batch / estimated message rate

clamped into ``[window_min, window_max]``.  A hot pair (high rate) gets a
tight window — its batches fill fast, so a short window still coalesces
well while bounding latency; a trickle pair (low rate) gets a wide window,
because only a wide window gives its messages any chance to share a wire
message at all.

Adaptive mode is on when ``window_max > 0``; otherwise every pair gets the
fixed ``base_window`` and the controller is a transparent pass-through,
which is exactly the pre-flow fabric behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.flow.rates import RateEstimator

__all__ = ["FlowController", "FlowState"]

#: an outbox identity: (source site, destination site)
FlowKey = Tuple[str, str]


class FlowState:
    """Live flow-control state for one (source, destination) pair."""

    __slots__ = ("estimator", "window")

    def __init__(self, estimator: RateEstimator, window: float):
        self.estimator = estimator
        #: the pair's current batch window in simulated seconds
        self.window = window

    def __repr__(self) -> str:
        return f"FlowState(window={self.window:.4g}, {self.estimator!r})"


class FlowController:
    """Sizes each (source, destination) pair's batch window from its traffic."""

    def __init__(self, base_window: float = 0.0, window_min: float = 0.0,
                 window_max: float = 0.0, target_batch: int = 8,
                 alpha: float = 0.2):
        #: the fixed/global window: used verbatim when adaptive mode is off,
        #: and as the seed window for pairs with no rate estimate yet
        self.base_window = base_window
        #: adaptive window bounds; adaptive mode is on iff ``window_max > 0``
        self.window_min = window_min
        self.window_max = window_max
        #: how many messages a window should ideally coalesce
        self.target_batch = target_batch
        #: EWMA smoothing factor handed to new estimators
        self.alpha = alpha
        self._flows: Dict[FlowKey, FlowState] = {}
        #: how often a derived window hit the floor / ceiling (the signal
        #: that the configured bounds, not the traffic, are setting windows)
        self.clamped_min = 0
        self.clamped_max = 0

    # -- configuration -----------------------------------------------------

    @property
    def adaptive(self) -> bool:
        """True when per-pair windows are derived from traffic rates."""
        return self.window_max > 0

    def configure(self, base_window: Optional[float] = None,
                  window_min: Optional[float] = None,
                  window_max: Optional[float] = None,
                  target_batch: Optional[int] = None,
                  alpha: Optional[float] = None) -> None:
        """Update the controller's parameters (None = keep the current value).

        Validation (non-negative bounds, min <= max, alpha in (0, 1]) is
        the caller's job — the transport raises ``TransportError`` and the
        kernel ``KernelError`` with their layer's diagnostics — but the
        controller still refuses an inverted window range outright, since
        running with one would make every clamp nonsensical.
        """
        new_min = self.window_min if window_min is None else float(window_min)
        new_max = self.window_max if window_max is None else float(window_max)
        if new_max > 0 and new_min > new_max:
            # Validate before assigning anything: a refused range must not
            # leave the controller holding the bounds it just rejected.
            raise ValueError(f"window_min {new_min} > window_max {new_max}")
        if base_window is not None:
            self.base_window = float(base_window)
        self.window_min = new_min
        self.window_max = new_max
        if target_batch is not None:
            self.target_batch = int(target_batch)
        if alpha is not None:
            self.alpha = float(alpha)
            for state in self._flows.values():
                state.estimator.alpha = self.alpha
        # Re-derive every live window under the new rules so a resize takes
        # effect immediately (the transport reconciles armed outboxes right
        # after), not only at each pair's next post.
        for state in self._flows.values():
            rate = state.estimator.message_rate
            ideal = self.target_batch / rate if (self.adaptive and rate > 0) \
                else self.base_window
            state.window = self._clamp(ideal)

    # -- the hot path ------------------------------------------------------

    def observe(self, key: FlowKey, now: float, size_bytes: int = 0) -> FlowState:
        """Feed one posted message for *key*; returns its updated state."""
        state = self._flows.get(key)
        if state is None:
            state = self._flows[key] = FlowState(
                RateEstimator(self.alpha), self._clamp(self.base_window))
        state.estimator.observe(now, size_bytes)
        if self.adaptive:
            rate = state.estimator.message_rate
            if rate > 0:
                state.window = self._clamp(self.target_batch / rate)
        return state

    def window_for(self, key: FlowKey) -> float:
        """The batch window the pair should currently run."""
        if not self.adaptive:
            return self.base_window
        state = self._flows.get(key)
        if state is None:
            return self._clamp(self.base_window)
        # Clamp at read time too: bounds may have been reconfigured since
        # the window was last derived from the pair's rate.
        return self._clamp(state.window)

    def _clamp(self, window: float) -> float:
        if not self.adaptive:
            return window
        if window < self.window_min:
            self.clamped_min += 1
            return self.window_min
        if window > self.window_max:
            self.clamped_max += 1
            return self.window_max
        return window

    def metrics(self) -> Dict[str, float]:
        """Registry source (``kernel.metrics``): clamp counters + pair count."""
        return {
            "flow_window_clamped_min": self.clamped_min,
            "flow_window_clamped_max": self.clamped_max,
            "flow_pairs_tracked": len(self._flows),
        }

    # -- lifecycle ---------------------------------------------------------

    def reset_site(self, site_name: str) -> int:
        """Drop flow state for every pair touching *site_name* (crash/recovery).

        A recovered destination starts from the seed window: its pre-crash
        arrival rate described traffic that died with the crash, and a
        stale tight window would mis-batch the first post-recovery trickle.
        Returns how many pairs were reset.
        """
        stale = [key for key in self._flows if site_name in key]
        for key in stale:
            del self._flows[key]
        return len(stale)

    def reset(self) -> None:
        """Drop all flow state (tests, full reconfiguration)."""
        self._flows.clear()

    # -- introspection -----------------------------------------------------

    def state(self, key: FlowKey) -> Optional[FlowState]:
        """The live state for *key*, or None if the pair has no history."""
        return self._flows.get(key)

    def telemetry(self) -> Dict[FlowKey, Dict[str, float]]:
        """Per-pair window/rate snapshot (what the stats layer publishes)."""
        return {
            key: {
                "window": state.window if self.adaptive else self.base_window,
                "message_rate": state.estimator.message_rate,
                "bytes_rate": state.estimator.bytes_rate,
                "messages": state.estimator.events,
                "bytes": state.estimator.bytes_total,
            }
            for key, state in self._flows.items()
        }

    def __len__(self) -> int:
        return len(self._flows)

    def __repr__(self) -> str:
        mode = (f"adaptive [{self.window_min:g}, {self.window_max:g}]"
                if self.adaptive else f"fixed {self.base_window:g}")
        return f"FlowController({mode}, {len(self._flows)} pairs)"
