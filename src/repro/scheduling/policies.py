"""Assignment policies used by broker agents (paper section 4).

"Brokers are expected to communicate among themselves and with the service
providers, so that requests can be distributed amongst service providers
based on load and capacity."  A policy is a pure function that, given the
candidate providers and what the broker currently believes about site load,
picks one provider.  Keeping policies pure makes them trivially unit- and
property-testable, and lets experiment E5 sweep over them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.errors import NoProviderError, SchedulingError

__all__ = [
    "ProviderInfo", "LoadEstimate", "Policy",
    "LeastLoadedPolicy", "RandomPolicy", "RoundRobinPolicy", "WeightedCapacityPolicy",
    "make_policy", "POLICY_NAMES",
]


@dataclass(frozen=True)
class ProviderInfo:
    """One registered service provider as the broker's database records it."""

    service: str
    site: str
    agent_name: str
    #: relative capacity declared at registration time (bigger = faster)
    capacity: float = 1.0
    #: price per request, used by commerce-aware workloads (0 = free)
    price: int = 0

    def key(self) -> str:
        """Stable identity of the provider inside the broker database."""
        return f"{self.service}@{self.site}/{self.agent_name}"


@dataclass
class LoadEstimate:
    """What a broker currently believes about one site's load."""

    site: str
    load: float
    reported_at: float
    #: how many requests this broker has assigned there since the last report
    assigned_since_report: int = 0
    #: raw resident-agent headcount the monitor sampled with the report
    #: (0 for reports from monitors that predate the per-site index)
    residents: int = 0

    def effective_load(self) -> float:
        """Reported load plus the requests routed there since the report.

        Counting our own assignments keeps a single broker from dog-piling
        one provider in between two monitor reports.
        """
        return self.load + self.assigned_since_report


class Policy:
    """Base class for provider-selection policies."""

    #: symbolic name used in benchmark tables
    name = "abstract"

    def choose(self, providers: Sequence[ProviderInfo],
               loads: Dict[str, LoadEstimate],
               rng: Optional[random.Random] = None) -> ProviderInfo:
        """Pick one provider from *providers* (non-empty)."""
        raise NotImplementedError

    def _require(self, providers: Sequence[ProviderInfo]) -> None:
        if not providers:
            raise NoProviderError("no providers registered for the requested service")


class LeastLoadedPolicy(Policy):
    """Send the request to the provider whose site looks least loaded.

    Load is the monitor-reported load normalised by the provider's declared
    capacity; ties break deterministically on the provider key so runs are
    reproducible.
    """

    name = "least-loaded"

    def choose(self, providers: Sequence[ProviderInfo],
               loads: Dict[str, LoadEstimate],
               rng: Optional[random.Random] = None) -> ProviderInfo:
        self._require(providers)

        def score(provider: ProviderInfo) -> tuple:
            estimate = loads.get(provider.site)
            load = estimate.effective_load() if estimate is not None else 0.0
            capacity = provider.capacity if provider.capacity > 0 else 1e-9
            return (load / capacity, provider.key())

        return min(providers, key=score)


class RandomPolicy(Policy):
    """Uniform random choice — the paper's strawman for comparison."""

    name = "random"

    def choose(self, providers: Sequence[ProviderInfo],
               loads: Dict[str, LoadEstimate],
               rng: Optional[random.Random] = None) -> ProviderInfo:
        self._require(providers)
        rng = rng or random.Random()
        return rng.choice(list(providers))


class RoundRobinPolicy(Policy):
    """Cycle through providers in registration order, ignoring load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next_index: Dict[str, int] = {}

    def choose(self, providers: Sequence[ProviderInfo],
               loads: Dict[str, LoadEstimate],
               rng: Optional[random.Random] = None) -> ProviderInfo:
        self._require(providers)
        ordered = sorted(providers, key=lambda provider: provider.key())
        service = ordered[0].service
        index = self._next_index.get(service, 0) % len(ordered)
        self._next_index[service] = index + 1
        return ordered[index]


class WeightedCapacityPolicy(Policy):
    """Random choice weighted by declared capacity (load-oblivious but capacity-aware)."""

    name = "weighted-capacity"

    def choose(self, providers: Sequence[ProviderInfo],
               loads: Dict[str, LoadEstimate],
               rng: Optional[random.Random] = None) -> ProviderInfo:
        self._require(providers)
        rng = rng or random.Random()
        weights = [max(provider.capacity, 1e-9) for provider in providers]
        total = sum(weights)
        pick = rng.uniform(0.0, total)
        cumulative = 0.0
        for provider, weight in zip(providers, weights):
            cumulative += weight
            if pick <= cumulative:
                return provider
        return providers[-1]


#: the policies experiment E5 sweeps over, by name
POLICY_NAMES = ("least-loaded", "random", "round-robin", "weighted-capacity")


def make_policy(name: str) -> Policy:
    """Build a policy instance from its symbolic name."""
    table = {
        "least-loaded": LeastLoadedPolicy,
        "random": RandomPolicy,
        "round-robin": RoundRobinPolicy,
        "weighted-capacity": WeightedCapacityPolicy,
    }
    try:
        return table[name]()
    except KeyError:
        raise SchedulingError(
            f"unknown policy {name!r}; choose from {sorted(table)}") from None
