"""Protected agents: broker-mediated meetings (paper section 4).

"Another use of broker agents is to enforce some protected agent's policies
with regard to meeting other agents.  This is accomplished by keeping the
name of the protected agent secret from all but its broker.  The broker,
then, provides the only way to meet with the protected agent.  To do this,
the broker maintains a folder for each agent that has requested a meeting
with the protected agent.  This folder contains the agent that has
requested the meeting (along with its briefcase).  Notice that this scheme
is possible only because folders are uninterpreted and typeless and,
therefore, can themselves store agents and sets of folders."

The guardian below implements exactly that: a request is a whole briefcase
(and optionally the requester's CODE) stored *inside a folder* in the
guardian's cabinet.  The protected agent's real installed name is a secret
held only by the guardian closure; admission policies decide which queued
requests are forwarded.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext

__all__ = [
    "make_guardian_behaviour", "AdmissionPolicy",
    "admit_all", "admit_authorized", "admit_rate_limited",
    "GUARDIAN_CABINET",
]

#: cabinet the guardian queues requests and decisions in
GUARDIAN_CABINET = "guardian"

#: an admission policy: (ctx, request_record) -> True to forward the meeting
AdmissionPolicy = Callable[[AgentContext, dict], bool]


def admit_all(ctx: AgentContext, request: dict) -> bool:
    """Forward every request (the trivially permissive policy)."""
    return True


def admit_authorized(authorized: set) -> AdmissionPolicy:
    """Forward only requests from principals named in *authorized*."""

    def policy(ctx: AgentContext, request: dict) -> bool:
        return request.get("requester") in authorized

    return policy


def admit_rate_limited(max_per_window: int, window: float = 1.0) -> AdmissionPolicy:
    """Forward at most *max_per_window* requests per *window* simulated seconds.

    The counter lives in the guardian's cabinet, so the limit is enforced
    across meets (each meet is a fresh behaviour instance).
    """

    def policy(ctx: AgentContext, request: dict) -> bool:
        cabinet = ctx.cabinet(GUARDIAN_CABINET)
        bucket = cabinet.get("rate_bucket") or {"window_start": ctx.now, "count": 0}
        if ctx.now - bucket["window_start"] >= window:
            bucket = {"window_start": ctx.now, "count": 0}
        if bucket["count"] >= max_per_window:
            admitted = False
        else:
            bucket["count"] += 1
            admitted = True
        folder = cabinet.folder("rate_bucket", create=True)
        folder.clear()
        folder.push(bucket)
        return admitted

    return policy


def make_guardian_behaviour(protected_agent_name: str,
                            policy: Optional[AdmissionPolicy] = None,
                            queue_by_default: bool = False) -> Callable:
    """Build a guardian for *protected_agent_name* (the secret name).

    Meet protocol:

    * ``REQUESTER`` — the requesting principal's name;
    * ``REQUEST`` — a folder holding the briefcase (``Briefcase.to_wire``)
      the requester wants the protected agent to be met with; optionally a
      ``CODE`` element if the requester ships an agent rather than data;
    * ``OP = "request"`` (default) — queue and, policy permitting, forward;
    * ``OP = "drain"`` — administrative: forward every queued request that
      the policy now admits (used after the policy's conditions change).

    Results: ``GRANTED`` (bool), ``RESPONSE`` (the briefcase returned by the
    protected agent, when forwarded), ``QUEUED_POSITION`` otherwise.
    """
    admission = policy or admit_all

    def guardian_behaviour(ctx: AgentContext, briefcase: Briefcase):
        cabinet = ctx.cabinet(GUARDIAN_CABINET)
        operation = briefcase.get("OP", "request")

        if operation == "drain":
            forwarded = 0
            pending = cabinet.elements("pending")
            still_pending = []
            for request in pending:
                if admission(ctx, request):
                    inner = Briefcase.from_wire(request["briefcase"])
                    yield ctx.meet(protected_agent_name, inner)
                    cabinet.put("forwarded", request)
                    forwarded += 1
                else:
                    still_pending.append(request)
            pending_folder = cabinet.folder("pending", create=True)
            pending_folder.replace(still_pending)
            briefcase.set("FORWARDED", forwarded)
            yield ctx.end_meet(forwarded)
            return forwarded

        requester = briefcase.get("REQUESTER", "anonymous")
        request_payload = briefcase.get("REQUEST")
        inner_wire = request_payload if isinstance(request_payload, dict) \
            else Briefcase().to_wire()
        request = {
            "requester": requester,
            "briefcase": inner_wire,
            "received_at": ctx.now,
        }
        # The request folder "contains the agent that has requested the
        # meeting (along with its briefcase)" — folders being typeless is
        # what makes this possible.
        cabinet.put("requests", request)

        if not queue_by_default and admission(ctx, request):
            inner = Briefcase.from_wire(inner_wire)
            result = yield ctx.meet(protected_agent_name, inner)
            briefcase.set("GRANTED", True)
            briefcase.set("RESPONSE", inner.to_wire())
            briefcase.set("RESULT", result.value if result is not None else None)
            cabinet.put("forwarded", request)
            yield ctx.end_meet(True)
            return True

        cabinet.put("pending", request)
        position = len(cabinet.elements("pending"))
        briefcase.set("GRANTED", False)
        briefcase.set("QUEUED_POSITION", position)
        yield ctx.end_meet(False)
        return False

    return guardian_behaviour
