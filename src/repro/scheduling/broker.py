"""Broker agents: matchmaking between service consumers and providers (paper section 4).

"Scheduling is implemented by *broker agents*, which are ordinary agents
whose names are well known.  Some broker agents maintain databases of
service providers; these brokers serve as matchmakers.  An agent that
requires a given service consults a broker to identify which agents provide
that service."

A broker is an ordinary behaviour installed under the well-known name
``"broker"``.  Because behaviours are re-instantiated on every meet, all
broker state — the provider database, the load table, the assignment
ledger — lives in the site-local ``broker`` file cabinet, which is exactly
the paper's model of durable site state.

The meet protocol (all through the briefcase):

``OP = "register"``
    ``SERVICE``, ``SITE``, ``AGENT`` (+ optional ``CAPACITY``, ``PRICE``):
    add a provider to the database.
``OP = "report"``
    ``SITE``, ``LOAD``, ``AT``: a monitor agent reporting site load.
``OP = "lookup"``
    ``SERVICE``: return every known provider in the ``PROVIDERS`` folder.
``OP = "acquire"``
    ``SERVICE``: pick one provider according to the broker's policy and
    return it in ``PROVIDER`` (plus a ``TICKET`` when a ticket agent is
    installed locally).  The assignment is counted in the ledger.
``OP = "sync"``
    ``LOADS`` and ``PROVIDERS`` folders from another broker: merge gossiped
    state (newest report per site wins).  See :mod:`repro.scheduling.routing`.
``OP = "dump"``
    Return the broker's full state (used by tests and the benchmarks).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.briefcase import Briefcase
from repro.core.cabinet import FileCabinet
from repro.core.context import AgentContext
from repro.core.errors import NoProviderError
from repro.scheduling.policies import LoadEstimate, Policy, ProviderInfo, make_policy

__all__ = [
    "BROKER_AGENT_NAME", "BROKER_CABINET",
    "make_broker_behaviour", "broker_state", "BrokerState",
    "merged_load_table",
]

#: the well-known name broker agents are installed under
BROKER_AGENT_NAME = "broker"
#: the site-local cabinet holding all broker state
BROKER_CABINET = "broker"

# Folder names inside the broker cabinet.
_PROVIDERS = "providers"
_LOADS = "loads"
_ASSIGNMENTS = "assignments"
_REPORTS_SEEN = "reports_seen"


class BrokerState:
    """A read/write view over the broker's cabinet state.

    The broker behaviour builds one of these per meet; tests and benchmarks
    build one directly from a site's cabinet to inspect what the broker
    believes.
    """

    def __init__(self, cabinet: FileCabinet):
        self._cabinet = cabinet

    # -- provider database ------------------------------------------------------

    def providers(self, service: Optional[str] = None) -> List[ProviderInfo]:
        """Every registered provider (optionally restricted to one service)."""
        rows = self._read_table(_PROVIDERS)
        providers = [ProviderInfo(**row) for row in rows.values()]
        if service is not None:
            providers = [provider for provider in providers if provider.service == service]
        return sorted(providers, key=lambda provider: provider.key())

    def add_provider(self, provider: ProviderInfo) -> None:
        """Insert or refresh a provider row."""
        rows = self._read_table(_PROVIDERS)
        rows[provider.key()] = {
            "service": provider.service, "site": provider.site,
            "agent_name": provider.agent_name, "capacity": provider.capacity,
            "price": provider.price,
        }
        self._write_table(_PROVIDERS, rows)

    # -- load table -------------------------------------------------------------

    def loads(self) -> Dict[str, LoadEstimate]:
        """The broker's current belief about per-site load."""
        rows = self._read_table(_LOADS)
        return {site: LoadEstimate(**row) for site, row in rows.items()}

    def record_report(self, site: str, load: float, at: float,
                      residents: int = 0) -> bool:
        """Record a monitor report.  Returns True if it was newer than what we had."""
        rows = self._read_table(_LOADS)
        existing = rows.get(site)
        if existing is not None and existing["reported_at"] >= at:
            return False
        rows[site] = {"site": site, "load": float(load), "reported_at": float(at),
                      "assigned_since_report": 0, "residents": int(residents)}
        self._write_table(_LOADS, rows)
        self._bump(_REPORTS_SEEN)
        return True

    def note_assignment(self, site: str) -> None:
        """Count one request we just routed to *site* (until the next report)."""
        rows = self._read_table(_LOADS)
        if site in rows:
            rows[site]["assigned_since_report"] = rows[site].get("assigned_since_report", 0) + 1
            self._write_table(_LOADS, rows)
        self._bump(_ASSIGNMENTS, key=site)

    # -- ledgers ------------------------------------------------------------------

    def assignments(self) -> Dict[str, int]:
        """How many acquire requests were routed to each site by this broker."""
        return {key: int(value) for key, value in self._read_table(_ASSIGNMENTS).items()}

    def reports_seen(self) -> int:
        """How many fresh monitor reports this broker has absorbed."""
        table = self._read_table(_REPORTS_SEEN)
        return int(table.get("count", 0))

    # -- gossip merge ----------------------------------------------------------------

    def merge_loads(self, rows: Dict[str, dict]) -> int:
        """Merge another broker's load table; newest ``reported_at`` per site wins."""
        mine = self._read_table(_LOADS)
        merged = 0
        for site, row in rows.items():
            existing = mine.get(site)
            if existing is None or existing["reported_at"] < row["reported_at"]:
                mine[site] = dict(row)
                merged += 1
        if merged:
            self._write_table(_LOADS, mine)
        return merged

    def merge_providers(self, rows: Dict[str, dict]) -> int:
        """Merge another broker's provider database (union by provider key)."""
        mine = self._read_table(_PROVIDERS)
        merged = 0
        for key, row in rows.items():
            if key not in mine:
                mine[key] = dict(row)
                merged += 1
        if merged:
            self._write_table(_PROVIDERS, mine)
        return merged

    def export(self) -> Dict[str, Dict[str, dict]]:
        """The gossip payload another broker can merge."""
        return {"providers": self._read_table(_PROVIDERS), "loads": self._read_table(_LOADS)}

    # -- cabinet plumbing ---------------------------------------------------------------

    def _read_table(self, folder_name: str) -> Dict[str, dict]:
        value = self._cabinet.get(folder_name)
        return dict(value) if isinstance(value, dict) else {}

    def _write_table(self, folder_name: str, rows: Dict[str, dict]) -> None:
        folder = self._cabinet.folder(folder_name, create=True)
        folder.clear()
        folder.push(rows)

    def _bump(self, folder_name: str, key: str = "count") -> None:
        rows = self._read_table(folder_name)
        rows[key] = int(rows.get(key, 0)) + 1
        self._write_table(folder_name, rows)


def broker_state(cabinet: FileCabinet) -> BrokerState:
    """Convenience constructor used by tests and benchmark reports."""
    return BrokerState(cabinet)


def merged_load_table(kernel, broker_sites: Sequence[str]) -> Dict[str, LoadEstimate]:
    """The cluster-wide load picture: the named brokers' tables merged.

    Each broker's table lives in its site-local cabinet — on a sharded
    kernel, on whichever shard owns that site — so merging across brokers
    is also how a sharded deployment assembles one load view without any
    broker knowing about shards.  The newest report per subject site wins;
    a tie keeps the earlier broker's row (in the given order).
    """
    merged: Dict[str, LoadEstimate] = {}
    for broker_site in broker_sites:
        state = BrokerState(kernel.site(broker_site).cabinet(BROKER_CABINET))
        for site, estimate in state.loads().items():
            kept = merged.get(site)
            if kept is None or estimate.reported_at > kept.reported_at:
                merged[site] = estimate
    return merged


def make_broker_behaviour(policy: str = "least-loaded",
                          policy_instance: Optional[Policy] = None,
                          ticket_agent: Optional[str] = None) -> Callable:
    """Build a broker behaviour using the named assignment *policy*.

    ``ticket_agent`` optionally names a locally installed ticket-issuing
    agent (see :mod:`repro.scheduling.ticket`); when set, every successful
    ``acquire`` also returns a ticket for the chosen provider.

    Round-robin state deliberately lives in the policy *object* (shared by
    every meet at a site because the same behaviour closure is installed),
    mirroring how a long-lived broker process would behave.
    """
    chosen_policy = policy_instance or make_policy(policy)

    def broker_behaviour(ctx: AgentContext, briefcase: Briefcase):
        state = BrokerState(ctx.cabinet(BROKER_CABINET))

        # Courier deliveries from monitor agents arrive as a LOAD_REPORT
        # folder rather than an OP folder (the monitor cannot meet a remote
        # broker directly — it sends a folder through the courier, exactly as
        # the paper's four-agent scheduling service does).
        if briefcase.has("LOAD_REPORT"):
            absorbed = 0
            for report in briefcase.folder("LOAD_REPORT").elements():
                if isinstance(report, dict) and "site" in report:
                    fresh = state.record_report(
                        str(report["site"]), float(report.get("load", 0.0)),
                        float(report.get("at", ctx.now)),
                        residents=int(report.get("residents", 0)))
                    absorbed += 1 if fresh else 0
            yield ctx.end_meet(absorbed)
            return absorbed

        operation = briefcase.get("OP", "lookup")

        if operation == "register":
            provider = ProviderInfo(
                service=briefcase.get("SERVICE"),
                site=briefcase.get("SITE", ctx.site_name),
                agent_name=briefcase.get("AGENT"),
                capacity=float(briefcase.get("CAPACITY", 1.0)),
                price=int(briefcase.get("PRICE", 0)),
            )
            state.add_provider(provider)
            briefcase.set("OK", True)
            yield ctx.end_meet(True)
            return True

        if operation == "report":
            site = briefcase.get("SITE")
            load = float(briefcase.get("LOAD", 0.0))
            at = float(briefcase.get("AT", ctx.now))
            fresh = state.record_report(site, load, at,
                                        residents=int(briefcase.get("RESIDENTS", 0)))
            briefcase.set("OK", fresh)
            yield ctx.end_meet(fresh)
            return fresh

        if operation == "lookup":
            service = briefcase.get("SERVICE")
            providers = state.providers(service)
            results = briefcase.folder("PROVIDERS", create=True)
            results.clear()
            for provider in providers:
                results.push({"service": provider.service, "site": provider.site,
                              "agent_name": provider.agent_name,
                              "capacity": provider.capacity, "price": provider.price})
            yield ctx.end_meet(len(providers))
            return len(providers)

        if operation == "acquire":
            service = briefcase.get("SERVICE")
            providers = state.providers(service)
            try:
                if not providers:
                    raise NoProviderError(f"no provider registered for {service!r}")
                chosen = chosen_policy.choose(providers, state.loads(), rng=ctx.rng)
            except NoProviderError as exc:
                briefcase.set("ERROR", str(exc))
                yield ctx.end_meet(None)
                return None
            state.note_assignment(chosen.site)
            briefcase.set("PROVIDER", {
                "service": chosen.service, "site": chosen.site,
                "agent_name": chosen.agent_name, "capacity": chosen.capacity,
                "price": chosen.price,
            })
            if ticket_agent is not None:
                ticket_request = Briefcase()
                ticket_request.set("OP", "issue")
                ticket_request.set("SERVICE", service)
                ticket_request.set("HOLDER", briefcase.get("CLIENT", "anonymous"))
                ticket_request.set("PROVIDER_SITE", chosen.site)
                result = yield ctx.meet(ticket_agent, ticket_request)
                if result is not None and ticket_request.has("TICKET"):
                    briefcase.set("TICKET", ticket_request.get("TICKET"))
            yield ctx.end_meet(briefcase.get("PROVIDER"))
            return briefcase.get("PROVIDER")

        if operation == "sync":
            merged_loads = 0
            merged_providers = 0
            loads_payload = briefcase.get("LOADS")
            providers_payload = briefcase.get("PROVIDERS_TABLE")
            if isinstance(loads_payload, dict):
                merged_loads = state.merge_loads(loads_payload)
            if isinstance(providers_payload, dict):
                merged_providers = state.merge_providers(providers_payload)
            briefcase.set("MERGED", {"loads": merged_loads, "providers": merged_providers})
            yield ctx.end_meet(merged_loads + merged_providers)
            return merged_loads + merged_providers

        if operation == "dump":
            export = state.export()
            briefcase.set("STATE", export)
            briefcase.set("ASSIGNMENTS", state.assignments())
            yield ctx.end_meet(export)
            return export

        briefcase.set("ERROR", f"unknown broker operation {operation!r}")
        yield ctx.end_meet(None)
        return None

    return broker_behaviour
