"""Monitor agents: reporting site status to brokers (paper sections 4 and 6).

The prototype's scheduling service used four agents; one "is responsible
for monitoring the status of a site and reporting that to the brokers".
The monitor below samples the local load metric and ships a ``LOAD_REPORT``
folder to every broker site through the courier — agents never talk to the
network directly.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.folder import Folder
from repro.net.message import MessageKind
from repro.scheduling.broker import BROKER_AGENT_NAME

__all__ = ["make_monitor_behaviour", "MONITOR_AGENT_NAME", "LOAD_REPORT_FOLDER"]

#: the name monitor agents run under (one per monitored site)
MONITOR_AGENT_NAME = "monitor"
#: the folder name carrying load reports to brokers
LOAD_REPORT_FOLDER = "LOAD_REPORT"


def make_monitor_behaviour(broker_sites: Sequence[str], interval: float = 0.5,
                           rounds: int = 10,
                           broker_agent: str = BROKER_AGENT_NAME) -> Callable:
    """Build a monitor behaviour reporting to the given broker sites.

    The monitor runs for *rounds* reporting cycles, *interval* simulated
    seconds apart, then terminates (an infinite monitor would keep the
    discrete-event loop from ever quiescing).  Benchmarks pick ``rounds``
    to cover the workload duration.
    """
    targets = list(broker_sites)

    def monitor_behaviour(ctx: AgentContext, briefcase: Briefcase):
        reports_sent = 0
        for _ in range(max(1, int(rounds))):
            report = {
                "site": ctx.site_name,
                "load": ctx.site_load(),
                # Raw resident population from the per-site index (the load
                # metric folds in capacity and background noise; brokers and
                # dashboards also want the undistorted headcount).
                "residents": ctx.resident_count(),
                "at": ctx.now,
            }
            for broker_site in targets:
                folder = Folder(LOAD_REPORT_FOLDER, [report])
                if broker_site == ctx.site_name:
                    # Local broker: meet it directly, no network traffic.
                    local = Briefcase()
                    local.add(folder)
                    yield ctx.meet(broker_agent, local)
                else:
                    # Load reports travel as ``status`` traffic so the
                    # delivery fabric can coalesce a site's reports (and any
                    # concurrent courier folders) to the same broker into
                    # one wire message per flush window.
                    yield ctx.send_folder(folder, broker_site, broker_agent,
                                          kind=MessageKind.STATUS)
                reports_sent += 1
            yield ctx.sleep(interval)
        briefcase.set("REPORTS_SENT", reports_sent)
        return reports_sent

    return monitor_behaviour
