"""Service providers and scheduled clients: the workload side of paper section 4.

These are the pieces experiment E5 launches around the broker machinery:

* :func:`make_compute_service_behaviour` — a provider installed at a site.
  Each request costs ``work / capacity`` simulated seconds, so slow sites
  really are slower, which is what makes load-aware policies win.
* :func:`scheduled_client_behaviour` — a mobile client that consults a
  broker, travels to the assigned provider's site, presents its ticket (if
  any), has the work done, and returns home with the result.
* :func:`install_scheduling` — wires brokers, monitors, ticket agents and
  providers into a kernel in one call; returns the handles benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.kernel import Kernel
from repro.core.registry import register_behaviour
from repro.scheduling.broker import BROKER_AGENT_NAME, make_broker_behaviour
from repro.scheduling.monitor import make_monitor_behaviour
from repro.scheduling.ticket import TICKET_AGENT_NAME, TicketIssuer, make_ticket_behaviour

__all__ = [
    "make_compute_service_behaviour", "scheduled_client_behaviour",
    "install_scheduling", "SchedulingDeployment",
    "SERVICE_AGENT_NAME", "CLIENT_BEHAVIOUR_NAME",
]

#: the well-known name compute providers are installed under
SERVICE_AGENT_NAME = "compute"
#: the registered name of the mobile client behaviour (so it can jump)
CLIENT_BEHAVIOUR_NAME = "scheduled_client"

#: cabinet where providers record the jobs they executed
SERVICE_CABINET = "service"


def make_compute_service_behaviour(work_seconds: float = 0.05,
                                   issuer: Optional[TicketIssuer] = None,
                                   require_ticket: bool = False) -> Callable:
    """Build a compute-service provider behaviour.

    Each met request costs ``work_seconds / site.capacity`` simulated
    seconds of busy time.  When *require_ticket* is set the provider
    redeems the caller's ticket through *issuer* first and refuses work
    without a valid one (the administrator-control point of section 4).
    """

    def compute_behaviour(ctx: AgentContext, briefcase: Briefcase):
        cabinet = ctx.cabinet(SERVICE_CABINET)

        if require_ticket:
            ticket_record = briefcase.get("TICKET")
            ok = False
            if ticket_record is not None and issuer is not None:
                from repro.core.errors import TicketError
                from repro.scheduling.ticket import Ticket
                try:
                    ticket = Ticket.from_wire(ticket_record)
                    ok = issuer.redeem(ticket, ctx.now, expected_site=ctx.site_name)
                except TicketError:
                    ok = False
            if not ok:
                cabinet.put("refused", {"client": briefcase.get("CLIENT"), "at": ctx.now})
                briefcase.set("ERROR", "ticket missing or invalid")
                yield ctx.end_meet(None)
                return None

        # Service time models contention: the more agents currently active at
        # this site, the longer each request takes, normalised by capacity.
        # ``site_load`` is exactly (active agents + background) / capacity.
        busy = work_seconds * max(1.0 / max(1e-9, _site_capacity(ctx)), ctx.site_load())
        yield ctx.sleep(busy)

        job = {
            "client": briefcase.get("CLIENT", "anonymous"),
            "request": briefcase.get("REQUEST"),
            "site": ctx.site_name,
            "started_at": ctx.now - busy,
            "finished_at": ctx.now,
            "busy": busy,
        }
        cabinet.put("jobs", job)
        briefcase.set("RESULT", {"site": ctx.site_name, "busy": busy,
                                 "finished_at": ctx.now})
        yield ctx.end_meet(briefcase.get("RESULT"))
        return briefcase.get("RESULT")

    return compute_behaviour


def _site_capacity(ctx: AgentContext) -> float:
    """The executing site's declared capacity (reached through the kernel)."""
    return ctx._kernel.site(ctx.site_name).capacity  # noqa: SLF001 - deliberate kernel peek


def scheduled_client_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """A mobile client: ask a broker for a provider, travel there, get served, go home.

    Briefcase folders set by the workload:

    * ``HOME`` — where results are deposited;
    * ``BROKER_SITE`` — which broker to consult;
    * ``SERVICE`` — the service name to acquire;
    * ``CLIENT`` — the client's principal name;
    * ``REQUEST`` — opaque request payload handed to the provider.

    The client is written in the TACOMA state-machine style (PHASE folder)
    because it crosses sites twice.
    """
    phase = briefcase.get("PHASE", "consult")
    broker_site = briefcase.get("BROKER_SITE")
    home = briefcase.get("HOME", ctx.site_name)
    service = briefcase.get("SERVICE", SERVICE_AGENT_NAME)

    if phase == "consult":
        if broker_site is not None and broker_site != ctx.site_name:
            briefcase.set("PHASE", "consult")
            yield ctx.jump(briefcase, broker_site)
            return "travelling-to-broker"

        acquire = Briefcase()
        acquire.set("OP", "acquire")
        acquire.set("SERVICE", service)
        acquire.set("CLIENT", briefcase.get("CLIENT", "anonymous"))
        result = yield ctx.meet(BROKER_AGENT_NAME, acquire)
        provider = result.value if result is not None else None
        if provider is None:
            briefcase.set("OUTCOME", {"status": "no-provider", "at": ctx.now})
            briefcase.set("PHASE", "home")
            if home != ctx.site_name:
                yield ctx.jump(briefcase, home)
                return "travelling-home"
        else:
            briefcase.set("PROVIDER", provider)
            if acquire.has("TICKET"):
                briefcase.set("TICKET", acquire.get("TICKET"))
            briefcase.set("PHASE", "execute")
            if provider["site"] != ctx.site_name:
                yield ctx.jump(briefcase, provider["site"])
                return "travelling-to-provider"

    if briefcase.get("PHASE") == "execute":
        provider = briefcase.get("PROVIDER")
        request = Briefcase()
        request.set("CLIENT", briefcase.get("CLIENT", "anonymous"))
        request.set("REQUEST", briefcase.get("REQUEST"))
        if briefcase.has("TICKET"):
            request.set("TICKET", briefcase.get("TICKET"))
        result = yield ctx.meet(provider["agent_name"], request)
        outcome = {
            "status": "served" if result is not None and result.value is not None
            else "refused",
            "provider_site": provider["site"],
            "result": result.value if result is not None else None,
            "finished_at": ctx.now,
        }
        briefcase.set("OUTCOME", outcome)
        briefcase.set("PHASE", "home")
        if home != ctx.site_name:
            yield ctx.jump(briefcase, home)
            return "travelling-home"

    # Home (or never left): deposit the outcome for the workload to collect.
    outcome = briefcase.get("OUTCOME", {"status": "lost"})
    outcome = dict(outcome)
    outcome.setdefault("client", briefcase.get("CLIENT", "anonymous"))
    outcome["completed_at"] = ctx.now
    ctx.cabinet("results").put("outcomes", outcome)
    yield ctx.sleep(0)
    return outcome


register_behaviour(CLIENT_BEHAVIOUR_NAME, scheduled_client_behaviour, replace=True)


@dataclass
class SchedulingDeployment:
    """Handles returned by :func:`install_scheduling` for benchmarks and tests."""

    kernel: Kernel
    broker_sites: List[str]
    provider_sites: List[str]
    issuer: Optional[TicketIssuer] = None
    monitor_agent_ids: List[str] = field(default_factory=list)

    def provider_job_counts(self) -> Dict[str, int]:
        """Jobs executed per provider site (the load-balance metric of E5)."""
        counts = {}
        for site in self.provider_sites:
            cabinet = self.kernel.site(site).cabinet(SERVICE_CABINET)
            counts[site] = len(cabinet.elements("jobs"))
        return counts

    def client_outcomes(self, home_sites: Sequence[str]) -> List[dict]:
        """Every client outcome deposited at the given home sites."""
        outcomes = []
        for site in home_sites:
            outcomes.extend(self.kernel.site(site).cabinet("results").elements("outcomes"))
        return outcomes


def install_scheduling(kernel: Kernel, broker_sites: Sequence[str],
                       provider_specs: Sequence[dict],
                       policy: str = "least-loaded",
                       with_tickets: bool = False,
                       monitor_interval: float = 0.5,
                       monitor_rounds: int = 10,
                       work_seconds: float = 0.05) -> SchedulingDeployment:
    """Install brokers, ticket agents, monitors and providers into *kernel*.

    ``provider_specs`` is a list of dicts: ``{"site": ..., "capacity": ...}``
    (capacity also updates ``Site.capacity`` so the load metric and the
    service time both reflect it).  Every provider is registered at every
    broker.  Returns a :class:`SchedulingDeployment`.
    """
    issuer = TicketIssuer() if with_tickets else None

    broker_behaviour = make_broker_behaviour(
        policy=policy, ticket_agent=TICKET_AGENT_NAME if with_tickets else None)
    for broker_site in broker_sites:
        kernel.install_agent(broker_site, BROKER_AGENT_NAME, broker_behaviour, replace=True)
        if with_tickets:
            kernel.install_agent(broker_site, TICKET_AGENT_NAME,
                                 make_ticket_behaviour(issuer), replace=True)

    provider_sites: List[str] = []
    service_behaviour = make_compute_service_behaviour(
        work_seconds=work_seconds, issuer=issuer, require_ticket=with_tickets)
    for spec in provider_specs:
        site_name = spec["site"]
        capacity = float(spec.get("capacity", 1.0))
        provider_sites.append(site_name)
        kernel.site(site_name).capacity = capacity
        kernel.install_agent(site_name, SERVICE_AGENT_NAME, service_behaviour, replace=True)
        if with_tickets:
            kernel.install_agent(site_name, TICKET_AGENT_NAME,
                                 make_ticket_behaviour(issuer), replace=True)
        # Register the provider with every broker by launching a one-shot
        # registration agent at the broker site (ordinary agents do the
        # plumbing — there is no out-of-band configuration channel).
        for broker_site in broker_sites:
            registration = Briefcase()
            registration.set("OP", "register")
            registration.set("SERVICE", spec.get("service", SERVICE_AGENT_NAME))
            registration.set("SITE", site_name)
            registration.set("AGENT", SERVICE_AGENT_NAME)
            registration.set("CAPACITY", capacity)
            kernel.launch(broker_site, _registration_behaviour, registration)

    monitor_ids = []
    monitor_behaviour = make_monitor_behaviour(
        broker_sites, interval=monitor_interval, rounds=monitor_rounds)
    for site_name in provider_sites:
        monitor_ids.append(kernel.launch(site_name, monitor_behaviour,
                                         name=f"monitor-{site_name}"))

    return SchedulingDeployment(kernel=kernel, broker_sites=list(broker_sites),
                                provider_sites=provider_sites, issuer=issuer,
                                monitor_agent_ids=monitor_ids)


def _registration_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """One-shot agent that registers a provider with the local broker."""
    result = yield ctx.meet(BROKER_AGENT_NAME, briefcase)
    return result.value if result is not None else None
