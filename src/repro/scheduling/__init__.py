"""Scheduling by broker agents (paper section 4, prototype section 6).

The four-agent scheduling service of the prototype, plus the pieces the
experiments need around it:

* :mod:`~repro.scheduling.broker` — the matchmaker broker agent;
* :mod:`~repro.scheduling.monitor` — per-site load monitors reporting to brokers;
* :mod:`~repro.scheduling.ticket` — the ticket-issuing agent gating access;
* :mod:`~repro.scheduling.policies` — the assignment policies E5 compares;
* :mod:`~repro.scheduling.routing` — broker-to-broker gossip ("like WAN routing");
* :mod:`~repro.scheduling.protected` — broker-mediated access to protected agents;
* :mod:`~repro.scheduling.service` — providers, mobile clients, and the
  one-call deployment helper.
"""

from repro.scheduling.broker import (BROKER_AGENT_NAME, BROKER_CABINET, BrokerState,
                                     broker_state, make_broker_behaviour,
                                     merged_load_table)
from repro.scheduling.monitor import (LOAD_REPORT_FOLDER, MONITOR_AGENT_NAME,
                                      make_monitor_behaviour)
from repro.scheduling.policies import (POLICY_NAMES, LeastLoadedPolicy, LoadEstimate, Policy,
                                       ProviderInfo, RandomPolicy, RoundRobinPolicy,
                                       WeightedCapacityPolicy, make_policy)
from repro.scheduling.protected import (GUARDIAN_CABINET, admit_all, admit_authorized,
                                        admit_rate_limited, make_guardian_behaviour)
from repro.scheduling.routing import (GOSSIP_AGENT_NAME, gossip_convergence,
                                      make_gossip_behaviour)
from repro.scheduling.service import (CLIENT_BEHAVIOUR_NAME, SERVICE_AGENT_NAME,
                                      SchedulingDeployment, install_scheduling,
                                      make_compute_service_behaviour,
                                      scheduled_client_behaviour)
from repro.scheduling.ticket import (TICKET_AGENT_NAME, Ticket, TicketIssuer,
                                     make_ticket_behaviour)

__all__ = [
    "BROKER_AGENT_NAME", "BROKER_CABINET", "BrokerState", "broker_state",
    "make_broker_behaviour", "merged_load_table",
    "MONITOR_AGENT_NAME", "LOAD_REPORT_FOLDER", "make_monitor_behaviour",
    "Policy", "LeastLoadedPolicy", "RandomPolicy", "RoundRobinPolicy",
    "WeightedCapacityPolicy", "ProviderInfo", "LoadEstimate", "make_policy", "POLICY_NAMES",
    "Ticket", "TicketIssuer", "make_ticket_behaviour", "TICKET_AGENT_NAME",
    "make_guardian_behaviour", "admit_all", "admit_authorized", "admit_rate_limited",
    "GUARDIAN_CABINET",
    "make_gossip_behaviour", "gossip_convergence", "GOSSIP_AGENT_NAME",
    "SERVICE_AGENT_NAME", "CLIENT_BEHAVIOUR_NAME", "SchedulingDeployment",
    "install_scheduling", "make_compute_service_behaviour", "scheduled_client_behaviour",
]
