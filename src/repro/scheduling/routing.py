"""Broker-to-broker state dissemination (paper section 4).

"Brokers are expected to communicate among themselves ... The problem of
maintaining the requisite state information and intelligently distributing
service requests seems to be equivalent to that of routing in a wide-area
network."

The reproduction implements the distance-vector-flavoured scheme the remark
suggests: each broker periodically gossips its load table and provider
database to the other brokers it knows about, and receivers merge entries
whose reports are newer than their own.  Experiment E5b measures how
quickly load information converges across brokers as a function of the
gossip interval, which is the "routing protocol" question the paper leaves
open.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.scheduling.broker import BROKER_AGENT_NAME, BROKER_CABINET, BrokerState

__all__ = ["make_gossip_behaviour", "gossip_convergence", "GOSSIP_AGENT_NAME"]

#: the name gossip agents run under (one per broker site)
GOSSIP_AGENT_NAME = "broker_gossip"


def make_gossip_behaviour(peer_broker_sites: Sequence[str], interval: float = 1.0,
                          rounds: int = 5,
                          broker_agent: str = BROKER_AGENT_NAME) -> Callable:
    """Build a gossip behaviour that pushes broker state to *peer_broker_sites*.

    The gossip agent is itself a mobile agent: each round it clones itself
    (via ``rexec``) to every peer broker site, and the clone meets the local
    broker there with an ``OP = "sync"`` briefcase carrying the exported
    tables.  Running for a bounded number of *rounds* keeps the event loop
    finite.
    """
    peers = list(peer_broker_sites)

    def deliver_behaviour(ctx: AgentContext, briefcase: Briefcase):
        """Registered clone body: hand the carried tables to the local broker."""
        sync = Briefcase()
        sync.set("OP", "sync")
        loads = briefcase.get("LOADS")
        providers = briefcase.get("PROVIDERS_TABLE")
        if loads is not None:
            sync.set("LOADS", loads)
        if providers is not None:
            sync.set("PROVIDERS_TABLE", providers)
        result = yield ctx.meet(broker_agent, sync)
        return result.value if result is not None else 0

    # The clone must be resolvable by name at the destination, so register it
    # lazily under a stable name derived from the broker agent.
    from repro.core.registry import register_behaviour
    clone_name = f"{GOSSIP_AGENT_NAME}_deliver"
    register_behaviour(clone_name, deliver_behaviour, replace=True)

    def gossip_behaviour(ctx: AgentContext, briefcase: Briefcase):
        pushes = 0
        for _ in range(max(1, int(rounds))):
            state = BrokerState(ctx.cabinet(BROKER_CABINET))
            export = state.export()
            for peer in peers:
                if peer == ctx.site_name:
                    continue
                payload = Briefcase()
                payload.set("LOADS", export["loads"])
                payload.set("PROVIDERS_TABLE", export["providers"])
                payload.set("CODE", {"kind": "registered", "name": clone_name})
                payload.set("HOST", peer)
                payload.set("CONTACT", "ag_py")
                yield ctx.meet("rexec", payload)
                pushes += 1
            yield ctx.sleep(interval)
        briefcase.set("PUSHES", pushes)
        return pushes

    return gossip_behaviour


def gossip_convergence(broker_states: Dict[str, BrokerState]) -> Dict[str, float]:
    """How far apart the brokers' load tables are (experiment E5b metric).

    Returns, per monitored site, the spread (max - min) of the ``reported_at``
    timestamps across brokers that know about the site, plus the fraction of
    (broker, site) cells that are populated at all under the key
    ``"__coverage__"``.
    """
    per_site_times: Dict[str, List[float]] = {}
    brokers = list(broker_states.values())
    for state in brokers:
        for site, estimate in state.loads().items():
            per_site_times.setdefault(site, []).append(estimate.reported_at)

    spread = {site: (max(times) - min(times)) for site, times in per_site_times.items()}
    total_cells = len(brokers) * len(per_site_times) if per_site_times else 1
    populated = sum(len(times) for times in per_site_times.values())
    spread["__coverage__"] = populated / total_cells if total_cells else 0.0
    return spread
