"""Ticket agents: gating access to a scheduled service (paper section 6).

The prototype's scheduling service includes an agent that "issues tickets
to allow access to the service".  A ticket is a small signed record binding
a holder to a service and an expiry time.  Providers verify tickets before
doing work, which gives system administrators the control point section 4
asks for ("facilities must be provided for system administrators to control
the resources comprising a site").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.cash.crypto import Signer
from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.errors import TicketError

__all__ = ["Ticket", "TicketIssuer", "make_ticket_behaviour", "TICKET_AGENT_NAME"]

#: the well-known name ticket agents are installed under
TICKET_AGENT_NAME = "ticket"

_ticket_ids = itertools.count(1)


@dataclass(frozen=True)
class Ticket:
    """A signed, time-limited permission to use a service."""

    ticket_id: int
    service: str
    holder: str
    provider_site: str
    issued_at: float
    expires_at: float
    signature: str

    def to_wire(self) -> Dict[str, object]:
        """Folder-storable form of the ticket."""
        return {
            "ticket_id": self.ticket_id, "service": self.service, "holder": self.holder,
            "provider_site": self.provider_site, "issued_at": self.issued_at,
            "expires_at": self.expires_at, "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "Ticket":
        """Rebuild a ticket from :meth:`to_wire` output."""
        try:
            return cls(
                ticket_id=int(payload["ticket_id"]), service=str(payload["service"]),
                holder=str(payload["holder"]), provider_site=str(payload["provider_site"]),
                issued_at=float(payload["issued_at"]), expires_at=float(payload["expires_at"]),
                signature=str(payload["signature"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TicketError(f"malformed ticket record: {payload!r}") from exc

    def payload(self) -> str:
        """The canonical string covered by the signature."""
        return (f"{self.ticket_id}|{self.service}|{self.holder}|"
                f"{self.provider_site}|{self.expires_at}")


class TicketIssuer:
    """Issues and verifies tickets with a per-issuer signing key."""

    def __init__(self, signer: Optional[Signer] = None, validity: float = 60.0):
        self.signer = signer or Signer("tacoma-ticket-issuer")
        self.validity = validity
        #: tickets issued, redeemed, and rejected — experiment ledger
        self.issued = 0
        self.redeemed = 0
        self.rejected = 0
        self._redeemed_ids: set = set()

    def issue(self, service: str, holder: str, provider_site: str, now: float) -> Ticket:
        """Issue a fresh ticket for *holder* to use *service* at *provider_site*."""
        ticket_id = next(_ticket_ids)
        body = (f"{ticket_id}|{service}|{holder}|{provider_site}|"
                f"{now + self.validity}")
        ticket = Ticket(
            ticket_id=ticket_id, service=service, holder=holder,
            provider_site=provider_site, issued_at=now,
            expires_at=now + self.validity,
            signature=self.signer.sign(body),
        )
        self.issued += 1
        return ticket

    def verify(self, ticket: Ticket, now: float,
               expected_site: Optional[str] = None) -> bool:
        """Check signature, expiry and (optionally) that it targets *expected_site*."""
        if not self.signer.verify(ticket.payload(), ticket.signature):
            self.rejected += 1
            return False
        if now > ticket.expires_at:
            self.rejected += 1
            return False
        if expected_site is not None and ticket.provider_site != expected_site:
            self.rejected += 1
            return False
        return True

    def redeem(self, ticket: Ticket, now: float,
               expected_site: Optional[str] = None) -> bool:
        """Verify and consume the ticket (each ticket is single-use)."""
        if ticket.ticket_id in self._redeemed_ids:
            self.rejected += 1
            return False
        if not self.verify(ticket, now, expected_site=expected_site):
            return False
        self._redeemed_ids.add(ticket.ticket_id)
        self.redeemed += 1
        return True


def make_ticket_behaviour(issuer: TicketIssuer) -> Callable:
    """Build the ticket agent behaviour bound to *issuer*.

    Meet protocol:

    * ``OP = "issue"`` with ``SERVICE``, ``HOLDER``, ``PROVIDER_SITE`` —
      returns the ticket in the ``TICKET`` folder;
    * ``OP = "verify"`` with ``TICKET`` — ends the meet with True/False;
    * ``OP = "redeem"`` with ``TICKET`` (and optional ``EXPECTED_SITE``) —
      verifies, consumes, and ends the meet with True/False.
    """

    def ticket_behaviour(ctx: AgentContext, briefcase: Briefcase):
        operation = briefcase.get("OP", "issue")

        if operation == "issue":
            ticket = issuer.issue(
                service=briefcase.get("SERVICE", "service"),
                holder=briefcase.get("HOLDER", "anonymous"),
                provider_site=briefcase.get("PROVIDER_SITE", ctx.site_name),
                now=ctx.now,
            )
            briefcase.set("TICKET", ticket.to_wire())
            yield ctx.end_meet(ticket.ticket_id)
            return ticket.ticket_id

        record = briefcase.get("TICKET")
        if record is None:
            briefcase.set("ERROR", "no TICKET folder supplied")
            yield ctx.end_meet(False)
            return False
        try:
            ticket = Ticket.from_wire(record)
        except TicketError as exc:
            briefcase.set("ERROR", str(exc))
            yield ctx.end_meet(False)
            return False

        expected_site = briefcase.get("EXPECTED_SITE")
        if operation == "verify":
            outcome = issuer.verify(ticket, ctx.now, expected_site=expected_site)
        elif operation == "redeem":
            outcome = issuer.redeem(ticket, ctx.now, expected_site=expected_site)
        else:
            briefcase.set("ERROR", f"unknown ticket operation {operation!r}")
            outcome = False
        briefcase.set("OK", outcome)
        yield ctx.end_meet(outcome)
        return outcome

    return ticket_behaviour
