"""Checkpointed guards: durable briefcase checkpoints and post-recovery revival.

Rear guards (paper section 5) protect a travelling computation as long as
*some* guard survives.  The window they cannot cover is a coordinated
loss: the site hosting the agent crashes *and* every site holding a
trailing guard crashes inside the same protection window.  Without durable
state the computation is simply gone, and the only recovery available is
to re-run the whole itinerary from the origin.

With the durable store (:mod:`repro.store`) the fault-tolerance layer
closes that window:

* the protected visitor checkpoints the exact briefcase it ships — the
  same snapshot its rear guard holds — into the site's durable
  ``rearguard`` cabinet before every jump, and waits out a durability
  barrier so the checkpoint is committed before the transfer departs
  ("checkpointed guards");
* :func:`install_checkpoint_recovery` subscribes to the kernel's
  ``on_site_recovered`` hook: when a crashed site finishes replaying its
  snapshot + WAL, every restored, un-released checkpoint re-spawns a rear
  guard holding that snapshot.  The revived guard runs the normal
  protocol — poll for (restored) releases, relaunch on timeout — so the
  computation resumes from the last durable checkpoint instead of being
  re-run end to end.

Duplicate work caused by revival (the computation may in fact have limped
on) is absorbed by the usual done-markers and delivery-site deduplication.
"""

from __future__ import annotations

from typing import Dict

from repro.core.briefcase import Briefcase
from repro.fault.rearguard import (CHECKPOINTS_FOLDER, REARGUARD_CABINET, _released,
                                   guard_snapshot, install_fault_agents,
                                   rear_guard_behaviour)

__all__ = ["CHECKPOINTS_FOLDER", "REVIVED_FOLDER", "record_checkpoint",
           "install_checkpoint_recovery", "enable_durable_protection",
           "revive_checkpoints", "durable_ft_cabinets"]

#: audit ledger of revivals performed (informational; the skip decision is
#: guard *liveness*, not this folder — a durable marker would permanently
#: suppress revival after a second crash killed the revived guard)
REVIVED_FOLDER = "revived"


def durable_ft_cabinets():
    """Cabinets the fault-tolerance layer opts into durability.

    The rearguard cabinet (checkpoints, releases, done-markers) and the
    delivery-site results cabinet (completion dedup must survive a
    delivery-site restart).  Resolved lazily so the results-cabinet name
    stays single-sourced in :mod:`repro.fault.ftmove` without an import
    cycle.
    """
    from repro.fault.ftmove import RESULTS_CABINET
    return (REARGUARD_CABINET, RESULTS_CABINET)


def record_checkpoint(cabinet, ft_id: str, protects_seq: int, snapshot_wire: dict,
                      per_hop: float, max_relaunches: int) -> None:
    """File a durable checkpoint for hop *protects_seq* of computation *ft_id*.

    The snapshot is byte-identical to the one the hop's rear guard holds,
    so a revival re-ships exactly what the guard would have.
    """
    cabinet.put(CHECKPOINTS_FOLDER, {
        "ft_id": ft_id,
        "protects_seq": int(protects_seq),
        "snapshot_wire": snapshot_wire,
        "per_hop": float(per_hop),
        "max_relaunches": int(max_relaunches),
    })


def enable_durable_protection(kernel) -> int:
    """Opt the fault-tolerance cabinets into durability at every site.

    No-op (returns 0) when the kernel runs with durability policy "none",
    so callers can enable unconditionally.
    """
    opted = 0
    for cabinet_name in durable_ft_cabinets():
        opted += kernel.make_durable(cabinet_name)
    return opted


def revive_checkpoints(kernel, site_name: str) -> int:
    """Re-spawn rear guards from the restored checkpoints of *site_name*.

    For each computation, only the newest restored checkpoint is
    considered; checkpoints already released (per the restored release
    ledger) or still protected by a live guard are skipped.  Returns the
    number of guards spawned.
    """
    site = kernel.site(site_name)
    if not site.has_cabinet(REARGUARD_CABINET):
        return 0
    cabinet = site.cabinet(REARGUARD_CABINET)
    best: Dict[str, dict] = {}
    for checkpoint in cabinet.elements(CHECKPOINTS_FOLDER):
        if not isinstance(checkpoint, dict) or "ft_id" not in checkpoint:
            continue
        kept = best.get(checkpoint["ft_id"])
        if kept is None or (int(checkpoint.get("protects_seq", 0))
                            > int(kept.get("protects_seq", 0))):
            best[checkpoint["ft_id"]] = checkpoint
    revived = 0
    for ft_id, checkpoint in best.items():
        protects_seq = int(checkpoint.get("protects_seq", 0))
        if _released(cabinet, ft_id, protects_seq):
            continue
        # Skip only while a guard for this checkpoint is still alive
        # somewhere; a durable skip-marker would permanently suppress
        # revival once a *later* crash killed the revived guard.
        if any(not agent.finished
               for name in (f"revived-guard-{ft_id}-{protects_seq}",
                            f"rear-guard-{ft_id}-{protects_seq}")
               for agent in kernel.agents_named(name)):
            continue
        cabinet.put(REVIVED_FOLDER, f"{ft_id}:{protects_seq}")
        snapshot = Briefcase.from_wire(checkpoint["snapshot_wire"])
        guard = guard_snapshot(ft_id, protects_seq, snapshot,
                               float(checkpoint.get("per_hop", 0.5)),
                               int(checkpoint.get("max_relaunches", 2)),
                               ack_aware=True)
        kernel.launch(site_name, rear_guard_behaviour, guard,
                      name=f"revived-guard-{ft_id}-{protects_seq}")
        kernel.log_event("kernel", site_name,
                         f"revived rear guard for {ft_id} hop {protects_seq} "
                         f"from durable checkpoint")
        revived += 1
    return revived


def install_checkpoint_recovery(kernel) -> None:
    """Wire checkpoint revival into *kernel* (idempotent).

    Installs the release agents, opts the fault-tolerance cabinets into
    durability everywhere (including sites registered later), and
    subscribes the revival sweep to ``on_site_recovered``.  Under policy
    "none" the durability opt-ins are no-ops and recoveries restore
    nothing, so revival never fires — the legacy behaviour.
    """
    install_fault_agents(kernel)
    enable_durable_protection(kernel)
    if getattr(kernel, "_checkpoint_recovery_installed", False):
        return
    kernel._checkpoint_recovery_installed = True
    kernel.on_site_added(
        lambda site_name: [kernel.make_durable(name, sites=[site_name])
                           for name in durable_ft_cabinets()])
    kernel.on_site_recovered(lambda site_name: revive_checkpoints(kernel, site_name))
