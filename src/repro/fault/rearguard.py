"""Rear-guard agents (paper section 5).

"The solutions we have studied involve leaving a *rear guard* agent behind
whenever execution moves from one site to another.  This rear guard is
responsible for (i) launching a new agent should a failure cause an agent
to vanish and (ii) terminating itself when its function is no longer
necessary (because the agent it protects is itself ready to terminate)."

The scheme implemented here keeps (up to) two live guards behind the
travelling agent — one-behind chaining:

* before the agent jumps from site ``S_k`` to ``S_{k+1}`` (hop ``k+1``) it
  spawns a guard at ``S_k`` holding a *snapshot* of exactly the briefcase
  being shipped;
* when the agent lands at hop ``j`` it sends a release notice to every
  guard protecting a hop ``<= j - 1`` (those guards have seen the
  computation move two sites past them and can retire);
* a guard whose deadline expires without a release presumes the protected
  agent vanished (site crash, lost transfer) and re-ships the snapshot —
  to the original target if it is reachable again, otherwise skipping ahead
  along the itinerary;
* duplicate arrivals (a slow agent plus its relaunched twin) are absorbed
  by per-site done-markers and by deduplication at the delivery site, so a
  computation completes *exactly once* even though relaunching is
  at-least-once.

The paper points out the hard cases — cyclic itineraries and cloning
fan-out.  Cycles are handled because done-markers are keyed by (computation
id, hop sequence number), not by site; fan-out is handled by giving each
clone its own computation id suffix (see ``ftmove.fan_out_ids``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.errors import FaultToleranceError
from repro.core.folder import Folder
from repro.core.registry import register_behaviour
from repro.fault.detector import TimeoutDetector
from repro.net.message import MessageKind

__all__ = [
    "REAR_GUARD_NAME", "RELEASE_AGENT_NAME", "REARGUARD_CABINET",
    "SUSPICIONS_FOLDER", "GUARD_GROUP",
    "rear_guard_behaviour", "release_agent_behaviour",
    "guard_snapshot", "install_fault_agents", "install_horus_guard_detection",
    "pending_guards", "make_release_folder",
]

#: registered name of the rear-guard behaviour
REAR_GUARD_NAME = "rear_guard"
#: installed name of the release-recording agent (present at every site)
RELEASE_AGENT_NAME = "rear_guard_release"
#: site-local cabinet the fault-tolerance machinery records into
REARGUARD_CABINET = "rearguard"

# Folder names inside a guard's own briefcase.
_GUARD_FT_ID = "GUARD_FT_ID"
_GUARD_PROTECTS = "GUARD_PROTECTS_SEQ"
_GUARD_SNAPSHOT = "GUARD_SNAPSHOT"
_GUARD_PER_HOP = "GUARD_PER_HOP"
_GUARD_MAX_RELAUNCH = "GUARD_MAX_RELAUNCHES"
_GUARD_VIEW_ASSISTED = "GUARD_VIEW_ASSISTED"

#: folder (in the rearguard cabinet) where Horus view-change suspicions land
SUSPICIONS_FOLDER = "suspicions"
#: default group name used by install_horus_guard_detection
GUARD_GROUP = "ft_sites"


def guard_snapshot(ft_id: str, protects_seq: int, shipped_briefcase: Briefcase,
                   per_hop_time: float, max_relaunches: int = 2,
                   view_assisted: bool = False) -> Briefcase:
    """Build the briefcase a rear guard is spawned with.

    ``shipped_briefcase`` is the exact briefcase being sent for hop
    *protects_seq*; the guard stores its wire form so a relaunch re-creates
    that hop byte-for-byte.  With ``view_assisted`` the guard also watches
    the local Horus suspicion folder (see
    :func:`install_horus_guard_detection`) and relaunches as soon as the
    protected hop's destination drops out of the site group, instead of
    waiting for its timeout to expire.
    """
    guard = Briefcase()
    guard.set(_GUARD_FT_ID, ft_id)
    guard.set(_GUARD_PROTECTS, int(protects_seq))
    guard.set(_GUARD_SNAPSHOT, shipped_briefcase.to_wire())
    guard.set(_GUARD_PER_HOP, float(per_hop_time))
    guard.set(_GUARD_MAX_RELAUNCH, int(max_relaunches))
    guard.set(_GUARD_VIEW_ASSISTED, bool(view_assisted))
    return guard


def install_horus_guard_detection(kernel, group_name: str = GUARD_GROUP) -> None:
    """Feed Horus view changes into every site's rearguard suspicion folder.

    Requires the kernel to run on the :class:`~repro.net.horus.HorusTransport`
    (the paper's third rexec implementation, whose whole point was "group
    communication and fault-tolerance").  A site group containing every site
    is created; whenever a member drops out of the view, every surviving
    site records a suspicion ``{"site": ..., "at": ...}`` that view-assisted
    rear guards react to immediately.  Sites registered after installation
    (via :meth:`Kernel.add_site`) are joined to the group automatically;
    calling this twice for the same group is a no-op.
    """
    from repro.net.horus import HorusTransport

    transport = kernel.transport
    if not isinstance(transport, HorusTransport):
        raise FaultToleranceError(
            "Horus-assisted guard detection needs the 'horus' transport; "
            f"the kernel is running on {transport.name!r}")
    installed_groups = getattr(kernel, "_horus_guard_groups", None)
    if installed_groups is None:
        installed_groups = set()
        kernel._horus_guard_groups = installed_groups
    if group_name in installed_groups and transport.has_group(group_name):
        # Already wired: a second install must not subscribe duplicate
        # observers (which doubled every suspicion record).
        return
    if not transport.has_group(group_name):
        transport.create_group(group_name, kernel.site_names())

    def make_observer(site_name: str):
        # Each observer diffs against its *own* copy of the last view it
        # saw; handing every observer the same set object let one site's
        # bookkeeping stand in for another's.
        previous = {"members": set(transport.group_view(group_name).members)}

        def observer(view) -> None:
            current = set(view.members)
            lost = previous["members"] - current
            previous["members"] = current
            site = kernel.sites.get(site_name)
            if site is None or not site.alive:
                return
            cabinet = site.cabinet(REARGUARD_CABINET)
            for victim in lost:
                cabinet.put(SUSPICIONS_FOLDER, {"site": victim, "at": kernel.now})
            # Keep a replace-style record of who is currently outside the
            # group; guards consult this rather than the append-only log.
            # Membership is read live from the kernel, not from a site list
            # captured at install time, so late-registered sites are judged
            # against current reality.
            down_folder = cabinet.folder("group_down", create=True)
            down_folder.replace([sorted(set(kernel.site_names()) - current)])

        return observer

    def wire_site(site_name: str) -> None:
        if site_name not in transport.group_view(group_name).members:
            transport.join(group_name, site_name)
        transport.subscribe_views(group_name, make_observer(site_name))

    for site_name in kernel.site_names():
        wire_site(site_name)
    # Sites registered after installation (Kernel.add_site) join the guard
    # group and get their own observer instead of staying invisible.
    kernel.on_site_added(wire_site)
    installed_groups.add(group_name)


def _currently_out_of_group(cabinet, site_name: Optional[str]) -> bool:
    """Is *site_name* currently outside the guard group (per the last view seen here)?"""
    if site_name is None:
        return False
    down = cabinet.get("group_down")
    return isinstance(down, list) and site_name in down


def release_agent_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Record arriving release notices in the site-local rearguard cabinet.

    The travelling agent cannot meet a guard directly (the guard is an
    anonymous spawned instance), so releases flow through this well-known
    agent: the courier delivers a ``FT_RELEASE`` folder here, and guards at
    this site poll the cabinet.  A folder may carry several notices — the
    landing agent packs every hop released at this site into *one* envelope
    — and each notice may itself list multiple released hops in
    ``released_seqs``; the whole envelope is acknowledged exactly once
    (one ``release_acks`` record, one ``end_meet``), not once per hop.
    """
    cabinet = ctx.cabinet(REARGUARD_CABINET)
    recorded = 0
    for folder_name in ("FT_RELEASE", briefcase.get("PAYLOAD_NAME", "FT_RELEASE")):
        if briefcase.has(folder_name):
            for notice in briefcase.folder(folder_name).elements():
                if isinstance(notice, dict) and "ft_id" in notice:
                    cabinet.put("releases", notice)
                    recorded += 1
            break
    cabinet.put("release_acks", {"notices": recorded, "at": ctx.now,
                                 "from": briefcase.get("SENDER_SITE")})
    yield ctx.end_meet(recorded)
    return recorded


def _released(cabinet, ft_id: str, protects_seq: int) -> bool:
    """Has a release arrived that retires a guard protecting *protects_seq*?"""
    for notice in cabinet.elements("releases"):
        if not isinstance(notice, dict) or notice.get("ft_id") != ft_id:
            continue
        if notice.get("done"):
            return True
        if int(notice.get("reached_seq", -1)) >= protects_seq + 1:
            return True
    return False


def rear_guard_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """The rear guard proper: poll for a release, relaunch on timeout.

    Outcome (returned and recorded in the local rearguard cabinet under
    ``guard_outcomes``): ``"released"``, ``"relaunched"`` (at least one
    relaunch happened before release), or ``"gave-up"`` after exhausting the
    relaunch budget.
    """
    ft_id = briefcase.get(_GUARD_FT_ID)
    protects_seq = int(briefcase.get(_GUARD_PROTECTS, 0))
    per_hop = float(briefcase.get(_GUARD_PER_HOP, 0.5))
    max_relaunches = int(briefcase.get(_GUARD_MAX_RELAUNCH, 2))
    view_assisted = bool(briefcase.get(_GUARD_VIEW_ASSISTED, False))
    snapshot_wire = briefcase.get(_GUARD_SNAPSHOT)
    protected_target = snapshot_wire and Briefcase.from_wire(snapshot_wire).get("TARGET_SITE")

    cabinet = ctx.cabinet(REARGUARD_CABINET)
    detector = TimeoutDetector(per_hop_time=per_hop, remaining_hops=2)
    guard_started = ctx.now
    deadline = detector.deadline_from(guard_started)
    relaunches = 0
    #: a view-change trigger fires at most once; afterwards only the timeout applies
    acted_on_view = False
    outcome = "released"

    while True:
        if _released(cabinet, ft_id, protects_seq):
            break
        presumed_lost = ctx.now >= deadline
        if not presumed_lost and view_assisted and not acted_on_view:
            # The protected hop's destination has dropped out of the site
            # group: treat that as immediate evidence of loss instead of
            # waiting out the conservative timeout.
            if _currently_out_of_group(cabinet, protected_target):
                presumed_lost = True
                acted_on_view = True
        if presumed_lost:
            if relaunches >= max_relaunches or snapshot_wire is None:
                outcome = "gave-up"
                break
            sent = yield from _relaunch(ctx, snapshot_wire)
            relaunches += 1
            outcome = "relaunched"
            cabinet.put("relaunches", {"ft_id": ft_id, "protects_seq": protects_seq,
                                       "attempt": relaunches, "at": ctx.now,
                                       "accepted": bool(sent)})
            deadline = detector.deadline_from(ctx.now)
        yield ctx.sleep(detector.poll_interval())

    cabinet.put("guard_outcomes", {"ft_id": ft_id, "protects_seq": protects_seq,
                                   "outcome": outcome, "relaunches": relaunches,
                                   "at": ctx.now})
    return outcome


def _relaunch(ctx: AgentContext, snapshot_wire: dict):
    """Re-ship the snapshot briefcase; skip ahead if the target is unreachable.

    The snapshot carries ``TARGET_SITE`` (the hop it was shipped for) and
    ``ITINERARY`` (the hops after that).  The guard tries the original
    target first; every refusal (site down, no route at send time) makes it
    skip to the next itinerary entry, recording the skip so the relaunched
    agent knows which hops were abandoned.
    """
    snapshot = Briefcase.from_wire(snapshot_wire)
    candidates: List[str] = []
    target = snapshot.get("TARGET_SITE")
    if target is not None:
        candidates.append(target)
    if snapshot.has("ITINERARY"):
        candidates.extend(list(snapshot.folder("ITINERARY").elements()))

    attempt_order = list(dict.fromkeys(candidates))  # preserve order, drop dupes
    for index, candidate in enumerate(attempt_order):
        shipment = Briefcase.from_wire(snapshot_wire)
        if candidate != target:
            # Rebuild the itinerary without the hops we are skipping over.
            remaining = attempt_order[index + 1:]
            itinerary = shipment.folder("ITINERARY", create=True)
            itinerary.replace(remaining)
            skipped = shipment.folder("SKIPPED", create=True)
            for missed in attempt_order[:index]:
                skipped.push(missed)
            shipment.set("TARGET_SITE", candidate)
        shipment.set("RELAUNCHED", True)
        shipment.set("HOST", candidate)
        shipment.set("CONTACT", "ag_py")
        # Relaunches ride the delivery fabric: the guard already waited out
        # a conservative timeout, so a flush window of extra latency is
        # irrelevant next to the header/setup a coalesced shipment saves.
        # Trade-off: a batched "accepted" means queued-in-the-outbox, so a
        # loss at flush time is no longer reported as a refusal — the guard
        # then recovers through its next timeout (the at-least-once model)
        # instead of skipping ahead immediately.  Post-time refusals (site
        # down, partitioned) still return False and skip ahead, because
        # posting to an unroutable pair bypasses the outbox.
        shipment.set("KIND", MessageKind.FT_RELAUNCH)
        result = yield ctx.meet("rexec", shipment)
        if result is not None and result.value:
            return True
    return False


def install_fault_agents(kernel) -> None:
    """Install the release-recording agent at every site of *kernel*."""
    kernel.install_agent(None, RELEASE_AGENT_NAME, release_agent_behaviour, replace=True)


def pending_guards(kernel) -> List[Dict[str, object]]:
    """Every guard outcome recorded anywhere in the system (test/benchmark helper)."""
    outcomes = []
    for site_name in kernel.site_names():
        cabinet = kernel.site(site_name).cabinet(REARGUARD_CABINET)
        for record in cabinet.elements("guard_outcomes"):
            entry = dict(record)
            entry["guard_site"] = site_name
            outcomes.append(entry)
    return outcomes


def make_release_folder(ft_id: str, reached_seq: int, done: bool = False,
                        released_seqs: Sequence[int] = ()) -> Folder:
    """The folder an arriving agent sends back to retire its guards.

    ``released_seqs`` lists every hop number this one envelope retires at
    the destination site (all hops ``<= reached_seq - 2``, or everything on
    ``done``); it is informational for the release agent's ledger — guards
    match on ``reached_seq``/``done`` — and omitted when not given, keeping
    the single-guard folder shape unchanged.
    """
    notice: Dict[str, object] = {"ft_id": ft_id, "reached_seq": int(reached_seq),
                                 "done": bool(done)}
    if released_seqs:
        notice["released_seqs"] = sorted(int(seq) for seq in released_seqs)
    return Folder("FT_RELEASE", [notice])


register_behaviour(REAR_GUARD_NAME, rear_guard_behaviour, replace=True)
register_behaviour(RELEASE_AGENT_NAME, release_agent_behaviour, replace=True)
