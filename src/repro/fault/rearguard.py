"""Rear-guard agents (paper section 5).

"The solutions we have studied involve leaving a *rear guard* agent behind
whenever execution moves from one site to another.  This rear guard is
responsible for (i) launching a new agent should a failure cause an agent
to vanish and (ii) terminating itself when its function is no longer
necessary (because the agent it protects is itself ready to terminate)."

The scheme implemented here keeps (up to) two live guards behind the
travelling agent — one-behind chaining:

* before the agent jumps from site ``S_k`` to ``S_{k+1}`` (hop ``k+1``) it
  spawns a guard at ``S_k`` holding a *snapshot* of exactly the briefcase
  being shipped;
* when the agent lands at hop ``j`` it sends a release notice to every
  guard protecting a hop ``<= j - 1`` (those guards have seen the
  computation move two sites past them and can retire);
* a guard whose deadline expires without a release presumes the protected
  agent vanished (site crash, lost transfer) and re-ships the snapshot —
  to the original target if it is reachable again, otherwise skipping ahead
  along the itinerary;
* duplicate arrivals (a slow agent plus its relaunched twin) are absorbed
  by per-site done-markers and by deduplication at the delivery site, so a
  computation completes *exactly once* even though relaunching is
  at-least-once.

The paper points out the hard cases — cyclic itineraries and cloning
fan-out.  Cycles are handled because done-markers are keyed by (computation
id, hop sequence number), not by site; fan-out is handled by giving each
clone its own computation id suffix (see ``ftmove.fan_out_ids``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.errors import FaultToleranceError
from repro.core.folder import Folder
from repro.core.registry import register_behaviour
from repro.fault.detector import TimeoutDetector
from repro.net.message import MessageKind

__all__ = [
    "REAR_GUARD_NAME", "RELEASE_AGENT_NAME", "REARGUARD_CABINET",
    "SUSPICIONS_FOLDER", "GUARD_GROUP", "CHECKPOINTS_FOLDER",
    "rear_guard_behaviour", "release_agent_behaviour",
    "guard_snapshot", "install_fault_agents", "install_horus_guard_detection",
    "pending_guards", "make_release_folder", "make_relaunch_ack_folder",
    "prune_released_checkpoints",
]

#: registered name of the rear-guard behaviour
REAR_GUARD_NAME = "rear_guard"
#: installed name of the release-recording agent (present at every site)
RELEASE_AGENT_NAME = "rear_guard_release"
#: site-local cabinet the fault-tolerance machinery records into
REARGUARD_CABINET = "rearguard"

# Folder names inside a guard's own briefcase.
_GUARD_FT_ID = "GUARD_FT_ID"
_GUARD_PROTECTS = "GUARD_PROTECTS_SEQ"
_GUARD_SNAPSHOT = "GUARD_SNAPSHOT"
_GUARD_PER_HOP = "GUARD_PER_HOP"
_GUARD_MAX_RELAUNCH = "GUARD_MAX_RELAUNCHES"
_GUARD_VIEW_ASSISTED = "GUARD_VIEW_ASSISTED"
_GUARD_ACK_AWARE = "GUARD_ACK_AWARE"

#: folder (in the rearguard cabinet) where Horus view-change suspicions land
SUSPICIONS_FOLDER = "suspicions"
#: default group name used by install_horus_guard_detection
GUARD_GROUP = "ft_sites"
#: folder (in the rearguard cabinet) holding durable briefcase checkpoints
#: (written by the ft visitor, revived by repro.fault.recovery, pruned here
#: as releases retire them)
CHECKPOINTS_FOLDER = "checkpoints"


def guard_snapshot(ft_id: str, protects_seq: int, shipped_briefcase: Briefcase,
                   per_hop_time: float, max_relaunches: int = 2,
                   view_assisted: bool = False, ack_aware: bool = False) -> Briefcase:
    """Build the briefcase a rear guard is spawned with.

    ``shipped_briefcase`` is the exact briefcase being sent for hop
    *protects_seq*; the guard stores its wire form so a relaunch re-creates
    that hop byte-for-byte.  With ``view_assisted`` the guard also watches
    the local Horus suspicion folder (see
    :func:`install_horus_guard_detection`) and relaunches as soon as the
    protected hop's destination drops out of the site group, instead of
    waiting for its timeout to expire.  With ``ack_aware`` the relaunched
    twin is expected to acknowledge its landing (the ft visitor does), and
    a shipment that stays un-acked is re-sent without consuming the
    relaunch budget; leave it False for payloads that never ack, so the
    exactly-``max_relaunches`` budget semantics stay pinned.
    """
    guard = Briefcase()
    guard.set(_GUARD_FT_ID, ft_id)
    guard.set(_GUARD_PROTECTS, int(protects_seq))
    guard.set(_GUARD_SNAPSHOT, shipped_briefcase.to_wire())
    guard.set(_GUARD_PER_HOP, float(per_hop_time))
    guard.set(_GUARD_MAX_RELAUNCH, int(max_relaunches))
    guard.set(_GUARD_VIEW_ASSISTED, bool(view_assisted))
    guard.set(_GUARD_ACK_AWARE, bool(ack_aware))
    return guard


def install_horus_guard_detection(kernel, group_name: str = GUARD_GROUP) -> None:
    """Feed Horus view changes into every site's rearguard suspicion folder.

    Requires the kernel to run on the :class:`~repro.net.horus.HorusTransport`
    (the paper's third rexec implementation, whose whole point was "group
    communication and fault-tolerance").  A site group containing every site
    is created; whenever a member drops out of the view, every surviving
    site records a suspicion ``{"site": ..., "at": ...}`` that view-assisted
    rear guards react to immediately.  Sites registered after installation
    (via :meth:`Kernel.add_site`) are joined to the group automatically;
    calling this twice for the same group is a no-op.
    """
    from repro.net.horus import HorusTransport

    transport = kernel.transport
    if not isinstance(transport, HorusTransport):
        raise FaultToleranceError(
            "Horus-assisted guard detection needs the 'horus' transport; "
            f"the kernel is running on {transport.name!r}")
    installed_groups = getattr(kernel, "_horus_guard_groups", None)
    if installed_groups is None:
        installed_groups = set()
        kernel._horus_guard_groups = installed_groups
    if group_name in installed_groups and transport.has_group(group_name):
        # Already wired: a second install must not subscribe duplicate
        # observers (which doubled every suspicion record).
        return
    if not transport.has_group(group_name):
        transport.create_group(group_name, kernel.site_names())

    def make_observer(site_name: str):
        # Each observer diffs against its *own* copy of the last view it
        # saw; handing every observer the same set object let one site's
        # bookkeeping stand in for another's.
        previous = {"members": set(transport.group_view(group_name).members)}

        def observer(view) -> None:
            current = set(view.members)
            lost = previous["members"] - current
            previous["members"] = current
            site = kernel.sites.get(site_name)
            if site is None or not site.alive:
                return
            cabinet = site.cabinet(REARGUARD_CABINET)
            for victim in lost:
                cabinet.put(SUSPICIONS_FOLDER, {"site": victim, "at": kernel.now})
            # Keep a replace-style record of who is currently outside the
            # group; guards consult this rather than the append-only log.
            # Membership is read live from the kernel, not from a site list
            # captured at install time, so late-registered sites are judged
            # against current reality.
            down_folder = cabinet.folder("group_down", create=True)
            down_folder.replace([sorted(set(kernel.site_names()) - current)])
            # replace() bypasses the cabinet API: mark the folder dirty so a
            # durable rearguard cabinet journals the membership update.
            cabinet.touch("group_down")

        return observer

    def wire_site(site_name: str) -> None:
        if site_name not in transport.group_view(group_name).members:
            transport.join(group_name, site_name)
        transport.subscribe_views(group_name, make_observer(site_name))

    for site_name in kernel.site_names():
        wire_site(site_name)
    # Sites registered after installation (Kernel.add_site) join the guard
    # group and get their own observer instead of staying invisible.
    kernel.on_site_added(wire_site)
    installed_groups.add(group_name)


def _currently_out_of_group(cabinet, site_name: Optional[str]) -> bool:
    """Is *site_name* currently outside the guard group (per the last view seen here)?"""
    if site_name is None:
        return False
    down = cabinet.get("group_down")
    return isinstance(down, list) and site_name in down


def release_agent_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Record arriving release notices in the site-local rearguard cabinet.

    The travelling agent cannot meet a guard directly (the guard is an
    anonymous spawned instance), so releases flow through this well-known
    agent: the courier delivers a ``FT_RELEASE`` folder here, and guards at
    this site poll the cabinet.  A folder may carry several notices — the
    landing agent packs every hop released at this site into *one* envelope
    — and each notice may itself list multiple released hops in
    ``released_seqs``; the whole envelope is acknowledged exactly once
    (one ``release_acks`` record, one ``end_meet``), not once per hop.

    Relaunch acknowledgements (notices with ``ack=True``, sent by a
    relaunched twin the moment it lands) arrive through the same path and
    are recorded under ``relaunch_acks``: they are the end-to-end evidence
    an ``ft-relaunch`` envelope survived the delivery fabric, which is what
    lets a guard distinguish "my shipment was lost at flush time" from "the
    twin died later".
    """
    cabinet = ctx.cabinet(REARGUARD_CABINET)
    recorded = 0
    for folder_name in ("FT_RELEASE", "FT_RELAUNCH_ACK",
                        briefcase.get("PAYLOAD_NAME", "FT_RELEASE")):
        if briefcase.has(folder_name):
            for notice in briefcase.folder(folder_name).elements():
                if isinstance(notice, dict) and "ft_id" in notice:
                    target = "relaunch_acks" if notice.get("ack") else "releases"
                    cabinet.put(target, notice)
                    recorded += 1
            break
    cabinet.put("release_acks", {"notices": recorded, "at": ctx.now,
                                 "from": briefcase.get("SENDER_SITE")})
    if recorded:
        # New releases may retire durable checkpoints parked here.
        prune_released_checkpoints(cabinet)
    yield ctx.end_meet(recorded)
    return recorded


def _released(cabinet, ft_id: str, protects_seq: int) -> bool:
    """Has a release arrived that retires a guard protecting *protects_seq*?"""
    for notice in cabinet.elements("releases"):
        if not isinstance(notice, dict) or notice.get("ft_id") != ft_id:
            continue
        if notice.get("done"):
            return True
        if int(notice.get("reached_seq", -1)) >= protects_seq + 1:
            return True
    return False


def prune_released_checkpoints(cabinet) -> int:
    """Drop durable checkpoints whose computation has released past them.

    Checkpoints accumulate one entry per protected hop; without pruning, a
    long-running durable workload grows the folder (and every WAL record
    re-serializing it) without bound.  Under the bytes-proportional WAL
    cost model (``store_write_byte_latency``) that growth is no longer
    just memory: every group commit re-prices the folder's full payload,
    so pruning directly bounds the simulated cost of each checkpoint
    barrier too.  Called whenever new releases are recorded; returns how
    many checkpoints were retired.
    """
    if not cabinet.has(CHECKPOINTS_FOLDER):
        return 0
    checkpoints = cabinet.elements(CHECKPOINTS_FOLDER)
    keep = [checkpoint for checkpoint in checkpoints
            if not (isinstance(checkpoint, dict) and "ft_id" in checkpoint
                    and _released(cabinet, checkpoint["ft_id"],
                                  int(checkpoint.get("protects_seq", 0))))]
    pruned = len(checkpoints) - len(keep)
    if pruned:
        cabinet.folder(CHECKPOINTS_FOLDER).replace(keep)
        cabinet.touch(CHECKPOINTS_FOLDER)
    return pruned


def _relaunch_acked(cabinet, ft_id: str, protects_seq: int, since: float) -> bool:
    """Did a twin acknowledge landing for this guard's hop after *since*?"""
    for notice in cabinet.elements("relaunch_acks"):
        if not isinstance(notice, dict) or notice.get("ft_id") != ft_id:
            continue
        if (int(notice.get("seq", -1)) >= protects_seq
                and float(notice.get("at", 0.0)) >= since):
            return True
    return False


def rear_guard_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """The rear guard proper: poll for a release, relaunch on timeout.

    Outcome (returned and recorded in the local rearguard cabinet under
    ``guard_outcomes``): ``"released"``, ``"relaunched"`` (at least one
    relaunch happened before release), or ``"gave-up"`` after exhausting the
    relaunch budget.

    The relaunch loop is ack-aware: with the delivery fabric enabled, an
    "accepted" shipment only means queued-in-outbox, so the guard watches
    ``relaunch_acks`` for the twin's landing acknowledgement.  A shipment
    that stays un-acked by the next timeout was lost in flight or at flush
    time (e.g. a partition dropped the batch) — the guard then *re-sends*
    without consuming its relaunch budget, since the loss was the
    network's fault, not evidence the computation keeps dying.  Re-sends
    are bounded separately and recorded under ``relaunch_retries``.
    """
    ft_id = briefcase.get(_GUARD_FT_ID)
    protects_seq = int(briefcase.get(_GUARD_PROTECTS, 0))
    per_hop = float(briefcase.get(_GUARD_PER_HOP, 0.5))
    max_relaunches = int(briefcase.get(_GUARD_MAX_RELAUNCH, 2))
    view_assisted = bool(briefcase.get(_GUARD_VIEW_ASSISTED, False))
    ack_aware = bool(briefcase.get(_GUARD_ACK_AWARE, False))
    snapshot_wire = briefcase.get(_GUARD_SNAPSHOT)
    protected_target = snapshot_wire and Briefcase.from_wire(snapshot_wire).get("TARGET_SITE")

    cabinet = ctx.cabinet(REARGUARD_CABINET)
    detector = TimeoutDetector(per_hop_time=per_hop, remaining_hops=2)
    guard_started = ctx.now
    deadline = detector.deadline_from(guard_started)
    relaunches = 0
    resends = 0
    #: bound on budget-free re-sends of lost-unacked shipments
    max_resends = max(2, max_relaunches)
    #: ship time of the last accepted shipment still lacking a landing ack
    awaiting_since: Optional[float] = None
    #: a view-change trigger fires at most once; afterwards only the timeout applies
    acted_on_view = False
    outcome = "released"

    while True:
        if _released(cabinet, ft_id, protects_seq):
            break
        presumed_lost = ctx.now >= deadline
        if not presumed_lost and view_assisted and not acted_on_view:
            # The protected hop's destination has dropped out of the site
            # group: treat that as immediate evidence of loss instead of
            # waiting out the conservative timeout.
            if _currently_out_of_group(cabinet, protected_target):
                presumed_lost = True
                acted_on_view = True
        if presumed_lost:
            if awaiting_since is not None and _relaunch_acked(
                    cabinet, ft_id, protects_seq, awaiting_since):
                # The twin landed (the envelope survived); continued silence
                # now means the twin itself vanished later, so the next
                # shipment is a real relaunch, charged to the budget again.
                awaiting_since = None
            retry = (ack_aware and awaiting_since is not None
                     and resends < max_resends)
            if not retry and (relaunches >= max_relaunches or snapshot_wire is None):
                outcome = "gave-up"
                break
            sent = yield from _relaunch(ctx, snapshot_wire)
            if retry:
                resends += 1
                cabinet.put("relaunch_retries", {
                    "ft_id": ft_id, "protects_seq": protects_seq,
                    "retry": resends, "at": ctx.now, "accepted": bool(sent)})
            else:
                relaunches += 1
                cabinet.put("relaunches", {"ft_id": ft_id, "protects_seq": protects_seq,
                                           "attempt": relaunches, "at": ctx.now,
                                           "accepted": bool(sent)})
            outcome = "relaunched"
            awaiting_since = ctx.now if sent else None
            deadline = detector.deadline_from(ctx.now)
        yield ctx.sleep(detector.poll_interval())

    cabinet.put("guard_outcomes", {"ft_id": ft_id, "protects_seq": protects_seq,
                                   "outcome": outcome, "relaunches": relaunches,
                                   "at": ctx.now})
    return outcome


def _relaunch(ctx: AgentContext, snapshot_wire: dict):
    """Re-ship the snapshot briefcase; skip ahead if the target is unreachable.

    The snapshot carries ``TARGET_SITE`` (the hop it was shipped for) and
    ``ITINERARY`` (the hops after that).  The guard tries the original
    target first; every refusal (site down, no route at send time) makes it
    skip to the next itinerary entry, recording the skip so the relaunched
    agent knows which hops were abandoned.
    """
    snapshot = Briefcase.from_wire(snapshot_wire)
    candidates: List[str] = []
    target = snapshot.get("TARGET_SITE")
    if target is not None:
        candidates.append(target)
    if snapshot.has("ITINERARY"):
        candidates.extend(list(snapshot.folder("ITINERARY").elements()))

    attempt_order = list(dict.fromkeys(candidates))  # preserve order, drop dupes
    for index, candidate in enumerate(attempt_order):
        shipment = Briefcase.from_wire(snapshot_wire)
        if candidate != target:
            # Rebuild the itinerary without the hops we are skipping over.
            remaining = attempt_order[index + 1:]
            itinerary = shipment.folder("ITINERARY", create=True)
            itinerary.replace(remaining)
            skipped = shipment.folder("SKIPPED", create=True)
            for missed in attempt_order[:index]:
                skipped.push(missed)
            shipment.set("TARGET_SITE", candidate)
        shipment.set("RELAUNCHED", True)
        # The twin acknowledges this site the moment it lands; the ack is
        # what distinguishes "envelope lost at flush time" (re-send free of
        # budget) from "twin died later" (a real relaunch).
        shipment.set("ACK_GUARD_SITE", ctx.site_name)
        shipment.set("HOST", candidate)
        shipment.set("CONTACT", "ag_py")
        # Relaunches ride the delivery fabric: the guard already waited out
        # a conservative timeout, so a flush window of extra latency is
        # irrelevant next to the header/setup a coalesced shipment saves.
        # Trade-off: a batched "accepted" means queued-in-the-outbox, so a
        # loss at flush time is no longer reported as a refusal — the guard
        # then recovers through its next timeout (the at-least-once model)
        # instead of skipping ahead immediately.  Post-time refusals (site
        # down, partitioned) still return False and skip ahead, because
        # posting to an unroutable pair bypasses the outbox.
        shipment.set("KIND", MessageKind.FT_RELAUNCH)
        result = yield ctx.meet("rexec", shipment)
        if result is not None and result.value:
            return True
    return False


def install_fault_agents(kernel) -> None:
    """Install the release-recording agent at every site of *kernel*."""
    kernel.install_agent(None, RELEASE_AGENT_NAME, release_agent_behaviour, replace=True)


def pending_guards(kernel) -> List[Dict[str, object]]:
    """Every guard outcome recorded anywhere in the system (test/benchmark helper)."""
    outcomes = []
    for site_name in kernel.site_names():
        cabinet = kernel.site(site_name).cabinet(REARGUARD_CABINET)
        for record in cabinet.elements("guard_outcomes"):
            entry = dict(record)
            entry["guard_site"] = site_name
            outcomes.append(entry)
    return outcomes


def make_release_folder(ft_id: str, reached_seq: int, done: bool = False,
                        released_seqs: Sequence[int] = ()) -> Folder:
    """The folder an arriving agent sends back to retire its guards.

    ``released_seqs`` lists every hop number this one envelope retires at
    the destination site (all hops ``<= reached_seq - 2``, or everything on
    ``done``); it is informational for the release agent's ledger — guards
    match on ``reached_seq``/``done`` — and omitted when not given, keeping
    the single-guard folder shape unchanged.
    """
    notice: Dict[str, object] = {"ft_id": ft_id, "reached_seq": int(reached_seq),
                                 "done": bool(done)}
    if released_seqs:
        notice["released_seqs"] = sorted(int(seq) for seq in released_seqs)
    return Folder("FT_RELEASE", [notice])


def make_relaunch_ack_folder(ft_id: str, seq: int, at: float) -> Folder:
    """The landing acknowledgement a relaunched twin sends its guard.

    Rides the fabric as an ``ft-release`` payload to the guard site's
    release agent, which records it under ``relaunch_acks``.
    """
    return Folder("FT_RELAUNCH_ACK",
                  [{"ft_id": ft_id, "seq": int(seq), "at": float(at), "ack": True}])


register_behaviour(REAR_GUARD_NAME, rear_guard_behaviour, replace=True)
register_behaviour(RELEASE_AGENT_NAME, release_agent_behaviour, replace=True)
