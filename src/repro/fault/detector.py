"""Failure detection for the rear-guard scheme (paper section 5).

A rear guard must decide that "a failure caused an agent to vanish" before
relaunching it.  Two detection styles are provided:

* **timeout-based** (:class:`TimeoutDetector`): the guard expects a release
  notice within a deadline derived from the itinerary's expected per-hop
  time; silence past the deadline means the protected agent is presumed
  lost.  This is what the rear-guard behaviour uses by default.
* **view-based** (:func:`subscribe_horus_suspicions`): when the kernel runs
  on the Horus transport, site crashes surface as group view changes; the
  helper translates those into suspicion records in a cabinet, so guards
  (or tests) can react without polling.

Both styles deliberately over-suspect rather than under-suspect: a slow
agent may be relaunched needlessly, and the destination-side deduplication
(see :mod:`repro.fault.ftmove`) absorbs the resulting duplicates.  That is
the classic trade-off of unreliable failure detectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.cabinet import FileCabinet
from repro.net.horus import GroupView, HorusTransport

__all__ = ["TimeoutDetector", "Suspicion", "subscribe_horus_suspicions",
           "SUSPICION_CABINET"]

#: cabinet the Horus-based detector records suspicions into
SUSPICION_CABINET = "suspicions"


@dataclass
class Suspicion:
    """One 'site X is believed failed' record."""

    site: str
    suspected_at: float
    source: str          # "timeout" | "horus-view"
    detail: str = ""

    def to_wire(self) -> Dict[str, object]:
        return {"site": self.site, "suspected_at": self.suspected_at,
                "source": self.source, "detail": self.detail}


class TimeoutDetector:
    """Deadline bookkeeping for a rear guard.

    The guard computes a deadline when it is created; every poll it asks
    :meth:`expired` whether the protected agent is now presumed lost.  The
    deadline grows with the number of remaining hops so long itineraries do
    not trip early guards.
    """

    def __init__(self, per_hop_time: float, remaining_hops: int,
                 safety_factor: float = 3.0, minimum: float = 0.5):
        if per_hop_time <= 0:
            raise ValueError("per_hop_time must be positive")
        self.per_hop_time = per_hop_time
        self.remaining_hops = max(1, remaining_hops)
        self.safety_factor = safety_factor
        self.minimum = minimum

    def deadline_from(self, start: float) -> float:
        """Absolute simulated time after which the agent is presumed lost."""
        horizon = self.per_hop_time * self.remaining_hops * self.safety_factor
        return start + max(self.minimum, horizon)

    def expired(self, start: float, now: float) -> bool:
        """True once *now* is past the deadline computed from *start*."""
        return now >= self.deadline_from(start)

    def poll_interval(self) -> float:
        """How often the guard should wake up to check for a release."""
        return max(self.minimum / 4.0, self.per_hop_time / 2.0)


def subscribe_horus_suspicions(transport: HorusTransport, group: str,
                               cabinet: FileCabinet,
                               on_suspect: Optional[Callable[[Suspicion], None]] = None,
                               ) -> Callable[[GroupView], None]:
    """Record a suspicion whenever a member drops out of *group*'s view.

    Returns the observer that was subscribed (handy for tests).  The
    comparison is against the previously *observed* view, kept in the
    cabinet, so the helper is stateless across calls.
    """

    def observer(view: GroupView) -> None:
        previous: Sequence[str] = cabinet.get("last_members", default=[]) or []
        lost: List[str] = [member for member in previous if member not in view.members]
        members_folder = cabinet.folder("last_members", create=True)
        members_folder.clear()
        members_folder.push(list(view.members))
        for site in lost:
            suspicion = Suspicion(site=site, suspected_at=0.0, source="horus-view",
                                  detail=f"dropped from view {view.view_id} of {group!r}")
            cabinet.put(SUSPICION_CABINET, suspicion.to_wire())
            if on_suspect is not None:
                on_suspect(suspicion)

    transport.subscribe_views(group, observer)
    # Seed the baseline membership so the first view change has something to
    # diff against.
    members_folder = cabinet.folder("last_members", create=True)
    members_folder.clear()
    members_folder.push(list(transport.group_view(group).members))
    return observer
