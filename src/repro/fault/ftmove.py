"""Fault-tolerant itinerant computations built from rear guards (paper section 5).

Two itinerant agents walk the same kind of itinerary:

* :func:`ft_visitor_behaviour` — protected: spawns a rear guard before every
  hop, releases guards as it makes progress, deduplicates at every site and
  at the delivery site, so site crashes along the way do not lose the
  computation (as long as the delivery site survives);
* :func:`plain_visitor_behaviour` — the unprotected baseline: a crash of the
  site currently hosting the agent (or a lost transfer) silently kills the
  whole computation.

Experiment E6 launches both over the same failure schedules and compares
completion rates, duplicate completions, and the message overhead the
guards add.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext, wait_until_durable
from repro.core.kernel import Kernel
from repro.core.registry import register_behaviour
from repro.fault.rearguard import (REARGUARD_CABINET, RELEASE_AGENT_NAME, guard_snapshot,
                                   install_fault_agents, make_release_folder,
                                   make_relaunch_ack_folder,
                                   prune_released_checkpoints, rear_guard_behaviour)
from repro.fault.recovery import record_checkpoint
from repro.net.message import MessageKind

__all__ = [
    "FT_VISITOR_NAME", "PLAIN_VISITOR_NAME", "RESULTS_CABINET",
    "ft_visitor_behaviour", "plain_visitor_behaviour",
    "launch_ft_computation", "launch_plain_computation",
    "completions", "fan_out_ids",
]

#: registered behaviour names (they must be resolvable at every site to jump)
FT_VISITOR_NAME = "ft_visitor"
PLAIN_VISITOR_NAME = "plain_visitor"

#: cabinet at the delivery site where finished computations are recorded
RESULTS_CABINET = "ft_results"

_computation_ids = itertools.count(1)


# ---------------------------------------------------------------------------
# the protected visitor
# ---------------------------------------------------------------------------

def _do_local_work(ctx: AgentContext, briefcase: Briefcase, seq: int):
    """Perform this hop's work: meet TASK if named, else sample the local data cabinet."""
    task = briefcase.get("TASK")
    results = briefcase.folder("RESULTS", create=True)
    if task is not None:
        work = Briefcase()
        work.set("FT_ID", briefcase.get("FT_ID"))
        work.set("SEQ", seq)
        outcome = yield ctx.meet(task, work)
        results.push({"site": ctx.site_name, "seq": seq,
                      "value": outcome.value if outcome is not None else None,
                      "at": ctx.now})
    else:
        value = ctx.cabinet("data").get("VALUE")
        results.push({"site": ctx.site_name, "seq": seq, "value": value, "at": ctx.now})
        yield ctx.sleep(float(briefcase.get("WORK_SECONDS", 0.01)))


def _send_releases(ctx: AgentContext, briefcase: Briefcase, ft_id: str,
                   reached_seq: int, done: bool = False,
                   retire_through: Optional[int] = None):
    """Retire every guard whose hop the computation has now moved safely past.

    Two guards trail the agent (the guards at the two most recently departed
    sites): a guard protecting hop ``p`` retires only once the computation
    has reached hop ``p + 2``.  Keeping two alive means losing the current
    site *and* the most recent guard site simultaneously still leaves a
    guard able to relaunch — the paper's "details ... are complex" remark
    is exactly about this window.

    Release traffic is batch-aware: the retiring guards are grouped by
    guard site and each site gets *one* ``ft-release`` envelope listing
    every released hop (a cyclic itinerary can park several guards at one
    site), instead of one courier per guard.  The envelope rides the
    delivery fabric, and the release agent acknowledges it once.

    ``retire_through`` overrides the conservative two-behind rule: every
    guard protecting a hop ``<= retire_through`` is retired.  The absorbed
    duplicate-twin path uses it — a twin landing on a ``:departed`` marker
    proves the hop it re-ships both ran and departed, so even the guard
    that shipped the twin is provably stale.
    """
    guards_folder = briefcase.folder("GUARDS", create=True)
    guards: List[dict] = [guard for guard in guards_folder.elements()
                          if isinstance(guard, dict)]
    keep: List[dict] = []
    retiring_by_site: Dict[str, List[int]] = {}
    threshold = reached_seq - 2 if retire_through is None else retire_through
    for guard in guards:
        protects_seq = int(guard.get("protects_seq", 0))
        retire = done or protects_seq <= threshold
        if not retire:
            keep.append(guard)
            continue
        retiring_by_site.setdefault(guard.get("site"), []).append(protects_seq)
    for guard_site, released_seqs in retiring_by_site.items():
        if guard_site == ctx.site_name:
            local_cabinet = ctx.cabinet(REARGUARD_CABINET)
            local_cabinet.put(
                "releases", {"ft_id": ft_id, "reached_seq": reached_seq, "done": done,
                             "released_seqs": sorted(released_seqs)})
            prune_released_checkpoints(local_cabinet)
        else:
            notice = make_release_folder(ft_id, reached_seq, done=done,
                                         released_seqs=released_seqs)
            if ctx.obs.active and ctx.trace_id is not None:
                # The release notice itself travels via the courier (its
                # delivery span lands at the guard site); this span marks
                # the guard-retirement decision on the itinerary's trace.
                ctx.obs.record(ctx.trace_id, "ft-release",
                               ctx.obs.next_key(ctx.site_name), start=ctx.now,
                               parent_id=ctx.trace_parent, kind="ft",
                               site=ctx.site_name, destination=guard_site,
                               attrs={"released": sorted(released_seqs),
                                      "done": done})
            yield ctx.send_folder(notice, guard_site, RELEASE_AGENT_NAME,
                                  kind=MessageKind.FT_RELEASE)
    guards_folder.replace(keep)


def ft_visitor_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """The rear-guard-protected itinerant agent (state machine, one hop per site)."""
    ft_id = briefcase.get("FT_ID", "ft-unnamed")
    seq = int(briefcase.get("SEQ", 0))
    per_hop = float(briefcase.get("PER_HOP", 0.5))
    max_relaunches = int(briefcase.get("MAX_RELAUNCHES", 2))
    cabinet = ctx.cabinet(REARGUARD_CABINET)

    # A relaunched twin acknowledges the guard that shipped it as soon as it
    # lands: the ack is the end-to-end evidence the ft-relaunch envelope
    # survived the delivery fabric (with batching on, an "accepted" shipment
    # only means queued-in-outbox).  A guard whose shipment stays un-acked
    # re-sends on its next timeout without burning its relaunch budget.
    if briefcase.has("ACK_GUARD_SITE"):
        ack_site = briefcase.remove("ACK_GUARD_SITE").peek()
        if ack_site == ctx.site_name:
            cabinet.put("relaunch_acks",
                        {"ft_id": ft_id, "seq": seq, "at": ctx.now, "ack": True})
        else:
            yield ctx.send_folder(make_relaunch_ack_folder(ft_id, seq, ctx.now),
                                  ack_site, RELEASE_AGENT_NAME,
                                  kind=MessageKind.FT_RELEASE)

    # Duplicate suppression, two-phase and crash-epoch-aware.  A twin is
    # absorbed when this hop safely *departed* (the ``:departed`` marker is
    # set once the next transfer was handed to the network), or when the
    # hop already ran in the *current* crash epoch — the original is still
    # here, alive and mid-work, and a twin must not chase a living
    # computation (duplicate chains would compound).  An arrival marker
    # from an older epoch means the computation died here mid-hop — the
    # site crashed between landing and jump — so the twin re-executes the
    # hop instead of vanishing against stale (possibly durably-restored)
    # state.
    marker = f"{ft_id}:{seq}"
    if cabinet.contains_element("done_markers", f"{marker}:departed"):
        # The departed marker proves hop *seq* both ran and left for hop
        # seq+1, so the computation reached seq+1 — re-issue the releases
        # with that evidence, retiring every guard protecting <= seq,
        # *including* the guard that shipped this twin (it only fired
        # because its release was lost, and nothing behind a departed
        # marker is relaunchable anyway).  Final-hop duplicates are
        # deduplicated downstream against ``completed_ids``.
        yield from _send_releases(ctx, briefcase, ft_id, reached_seq=seq + 1,
                                  retire_through=seq)
        return "duplicate-hop"
    if cabinet.contains_element("done_markers",
                                f"{marker}@{ctx.site_crash_count}"):
        # Same epoch, not yet departed: the original is still executing
        # this hop.  Conservative release only (reached *seq*) — the
        # shipping guard stays armed until the live original's own
        # progress releases it.
        yield from _send_releases(ctx, briefcase, ft_id, reached_seq=seq)
        return "duplicate-hop"
    cabinet.put("done_markers", f"{marker}@{ctx.site_crash_count}")
    # Logged only for hops that actually execute (absorbed duplicates cost
    # a message, not work): E12 reads these events to count re-executed hops.
    ctx.log(f"hop-exec {ft_id} seq={seq}")
    # The hop span is keyed by the itinerary position (``hop{seq}``), not a
    # counter, so the same hop re-executed after a crash keeps one identity
    # and span trees match across shard execution backends.
    hop_span = None
    if ctx.obs.active and ctx.trace_id is not None:
        hop_span = ctx.obs.begin(ctx.trace_id, "ft-hop", f"hop{seq}",
                                 parent_id=ctx.trace_parent, kind="ft",
                                 site=ctx.site_name, attrs={"ft_id": ft_id})
        ctx.set_trace_parent(hop_span.span_id)

    yield from _do_local_work(ctx, briefcase, seq)

    itinerary = briefcase.folder("ITINERARY", create=True)
    if itinerary:
        yield from _send_releases(ctx, briefcase, ft_id, reached_seq=seq)
        next_site = itinerary.dequeue()
        next_seq = seq + 1
        briefcase.set("SEQ", next_seq)
        briefcase.set("TARGET_SITE", next_site)
        guards_folder = briefcase.folder("GUARDS", create=True)
        guards_folder.push({"site": ctx.site_name, "protects_seq": next_seq})

        # Building the jump syscall attaches CODE/HOST/CONTACT to the
        # briefcase, so the snapshot taken right after it is exactly what a
        # relaunch must re-ship.
        jump = ctx.jump(briefcase, next_site)
        snapshot = briefcase.copy()
        yield ctx.spawn(rear_guard_behaviour,
                        guard_snapshot(ft_id, next_seq, snapshot, per_hop, max_relaunches,
                                       view_assisted=bool(briefcase.get("VIEW_ASSISTED",
                                                                        False)),
                                       ack_aware=True),
                        name=f"rear-guard-{ft_id}-{next_seq}")
        if briefcase.get("DURABLE_CHECKPOINT") and ctx.store is not None:
            # Checkpointed guards: file the guard's exact snapshot in the
            # durable store and wait out the durability barrier, so the
            # checkpoint is committed before the transfer departs.  If this
            # site and every trailing guard site later crash together, the
            # post-recovery revival sweep resumes the computation from here
            # instead of losing it (see repro.fault.recovery).  The barrier
            # is looped against a journal mark: an estimate can come up
            # short when the commit batch grows after pricing, and the
            # checkpoint must genuinely be durable before the jump.  With
            # the store's commit governor piggybacking (the default), the
            # barrier commits the batch immediately instead of sitting out
            # the commit window — the wait logged below is what E13 reads
            # to price checkpoint latency per hop.
            record_checkpoint(cabinet, ft_id, next_seq, snapshot.to_wire(),
                              per_hop, max_relaunches)
            barrier_from = ctx.now
            ckpt_span = None
            if hop_span is not None:
                ckpt_span = ctx.obs.begin(ctx.trace_id, "ft-ckpt",
                                          f"hop{next_seq}",
                                          parent_id=hop_span.span_id,
                                          kind="store", site=ctx.site_name)
            yield from wait_until_durable(ctx)
            if ckpt_span is not None:
                ctx.obs.finish(ckpt_span, waited=ctx.now - barrier_from)
            ctx.log(f"ckpt-wait {ft_id} seq={next_seq} "
                    f"waited={ctx.now - barrier_from:.6f}")
        result = yield jump
        if hop_span is not None:
            ctx.obs.finish(hop_span, status="moved", next_site=next_site)
        if result is not None and result.value:
            # The transfer was handed to the network: a twin arriving here
            # later is redundant and may be absorbed.  Crash before this
            # point and the marker stays un-departed, so a twin re-executes
            # the hop instead of vanishing against a stale marker.
            cabinet.put("done_markers", f"{marker}:departed")
        return "moved"

    # Final hop: deliver exactly once.  The single done release retires
    # every guard still trailing — including any the regular reached-seq
    # rule would have covered — so each guard site gets exactly one
    # envelope from the landing instead of two release rounds.
    delivery = ctx.cabinet(RESULTS_CABINET)
    if delivery.contains_element("completed_ids", ft_id):
        yield from _send_releases(ctx, briefcase, ft_id, reached_seq=seq, done=True)
        if hop_span is not None:
            ctx.obs.finish(hop_span, status="duplicate-completion")
        return "duplicate-completion"
    delivery.put("completed_ids", ft_id)
    delivery.put("completions", {
        "ft_id": ft_id,
        "results": briefcase.folder("RESULTS", create=True).elements(),
        "hops": seq,
        "skipped": briefcase.folder("SKIPPED", create=True).elements(),
        "relaunched": bool(briefcase.get("RELAUNCHED", False)),
        "completed_at": ctx.now,
        "site": ctx.site_name,
    })
    yield from _send_releases(ctx, briefcase, ft_id, reached_seq=seq, done=True)
    if hop_span is not None:
        ctx.obs.finish(hop_span, status="delivered")
    return "completed"


# ---------------------------------------------------------------------------
# the unprotected baseline
# ---------------------------------------------------------------------------

def plain_visitor_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """The same itinerary walk with no rear guards (E6 baseline)."""
    ft_id = briefcase.get("FT_ID", "plain-unnamed")
    seq = int(briefcase.get("SEQ", 0))
    ctx.log(f"hop-exec {ft_id} seq={seq}")

    yield from _do_local_work(ctx, briefcase, seq)

    itinerary = briefcase.folder("ITINERARY", create=True)
    if itinerary:
        next_site = itinerary.dequeue()
        briefcase.set("SEQ", seq + 1)
        briefcase.set("TARGET_SITE", next_site)
        yield ctx.jump(briefcase, next_site)
        return "moved"

    delivery = ctx.cabinet(RESULTS_CABINET)
    if not delivery.contains_element("completed_ids", ft_id):
        delivery.put("completed_ids", ft_id)
        delivery.put("completions", {
            "ft_id": ft_id,
            "results": briefcase.folder("RESULTS", create=True).elements(),
            "hops": seq,
            "skipped": [],
            "relaunched": False,
            "completed_at": ctx.now,
            "site": ctx.site_name,
        })
    return "completed"


register_behaviour(FT_VISITOR_NAME, ft_visitor_behaviour, replace=True)
register_behaviour(PLAIN_VISITOR_NAME, plain_visitor_behaviour, replace=True)


# ---------------------------------------------------------------------------
# launch and collection helpers
# ---------------------------------------------------------------------------

def _build_briefcase(ft_id: str, itinerary: Sequence[str], per_hop: float,
                     max_relaunches: int, work_seconds: float,
                     task: Optional[str], view_assisted: bool = False,
                     durable_checkpoints: bool = False) -> Briefcase:
    briefcase = Briefcase()
    briefcase.set("FT_ID", ft_id)
    briefcase.set("SEQ", 0)
    briefcase.set("PER_HOP", per_hop)
    briefcase.set("MAX_RELAUNCHES", max_relaunches)
    briefcase.set("WORK_SECONDS", work_seconds)
    if view_assisted:
        briefcase.set("VIEW_ASSISTED", True)
    if durable_checkpoints:
        briefcase.set("DURABLE_CHECKPOINT", True)
    if task is not None:
        briefcase.set("TASK", task)
    itinerary_folder = briefcase.folder("ITINERARY", create=True)
    for site in itinerary:
        itinerary_folder.enqueue(site)
    return briefcase


def launch_ft_computation(kernel: Kernel, origin: str, itinerary: Sequence[str],
                          ft_id: Optional[str] = None, per_hop: float = 0.5,
                          max_relaunches: int = 2, work_seconds: float = 0.01,
                          task: Optional[str] = None, delay: float = 0.0,
                          view_assisted: bool = False,
                          durable_checkpoints: bool = False) -> str:
    """Launch a rear-guard-protected computation; returns its computation id.

    The itinerary lists the sites to visit *after* the origin; the last
    entry is the delivery site where the completion record lands.  The
    release-recording agent is installed everywhere as a side effect
    (idempotent).  With ``view_assisted`` the guards additionally react to
    Horus view changes (call
    :func:`repro.fault.install_horus_guard_detection` first).  With
    ``durable_checkpoints`` the visitor files each hop's guard snapshot in
    the site's durable store before jumping and checkpoint revival is
    wired in (:func:`repro.fault.recovery.install_checkpoint_recovery`) —
    meaningful only when the kernel runs with a durability policy other
    than "none".
    """
    install_fault_agents(kernel)
    if durable_checkpoints:
        from repro.fault.recovery import install_checkpoint_recovery
        install_checkpoint_recovery(kernel)
    ft_id = ft_id or f"ft-{next(_computation_ids):05d}"
    briefcase = _build_briefcase(ft_id, itinerary, per_hop, max_relaunches,
                                 work_seconds, task, view_assisted=view_assisted,
                                 durable_checkpoints=durable_checkpoints)
    if kernel.obs.active:
        # Name the trace after the computation: one grep-able id ties the
        # kernel event log, the completion record and the span tree together.
        from repro.obs import TRACE_ID_FOLDER
        briefcase.set(TRACE_ID_FOLDER, ft_id)
    kernel.launch(origin, FT_VISITOR_NAME, briefcase, delay=delay)
    return ft_id


def launch_plain_computation(kernel: Kernel, origin: str, itinerary: Sequence[str],
                             ft_id: Optional[str] = None, work_seconds: float = 0.01,
                             task: Optional[str] = None, delay: float = 0.0) -> str:
    """Launch the unprotected baseline computation; returns its computation id."""
    ft_id = ft_id or f"plain-{next(_computation_ids):05d}"
    briefcase = _build_briefcase(ft_id, itinerary, per_hop=0.5, max_relaunches=0,
                                 work_seconds=work_seconds, task=task)
    if kernel.obs.active:
        from repro.obs import TRACE_ID_FOLDER
        briefcase.set(TRACE_ID_FOLDER, ft_id)
    kernel.launch(origin, PLAIN_VISITOR_NAME, briefcase, delay=delay)
    return ft_id


def completions(kernel: Kernel, delivery_site: str,
                ft_id: Optional[str] = None) -> List[Dict[str, object]]:
    """Completion records found at *delivery_site* (optionally for one computation)."""
    cabinet = kernel.site(delivery_site).cabinet(RESULTS_CABINET)
    records = [record for record in cabinet.elements("completions")
               if isinstance(record, dict)]
    if ft_id is not None:
        records = [record for record in records if record.get("ft_id") == ft_id]
    return records


def fan_out_ids(base_id: str, branches: int) -> List[str]:
    """Per-branch computation ids for a cloning (fan-out) computation.

    The paper notes fan-out complicates rear guards; giving every branch its
    own id keeps the done-markers and delivery dedup of different branches
    from interfering.
    """
    return [f"{base_id}/branch-{index:03d}" for index in range(branches)]
