"""Fault-tolerant itinerant computations built from rear guards (paper section 5).

Two itinerant agents walk the same kind of itinerary:

* :func:`ft_visitor_behaviour` — protected: spawns a rear guard before every
  hop, releases guards as it makes progress, deduplicates at every site and
  at the delivery site, so site crashes along the way do not lose the
  computation (as long as the delivery site survives);
* :func:`plain_visitor_behaviour` — the unprotected baseline: a crash of the
  site currently hosting the agent (or a lost transfer) silently kills the
  whole computation.

Experiment E6 launches both over the same failure schedules and compares
completion rates, duplicate completions, and the message overhead the
guards add.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.kernel import Kernel
from repro.core.registry import register_behaviour
from repro.fault.rearguard import (REARGUARD_CABINET, RELEASE_AGENT_NAME, guard_snapshot,
                                   install_fault_agents, make_release_folder,
                                   rear_guard_behaviour)
from repro.net.message import MessageKind

__all__ = [
    "FT_VISITOR_NAME", "PLAIN_VISITOR_NAME", "RESULTS_CABINET",
    "ft_visitor_behaviour", "plain_visitor_behaviour",
    "launch_ft_computation", "launch_plain_computation",
    "completions", "fan_out_ids",
]

#: registered behaviour names (they must be resolvable at every site to jump)
FT_VISITOR_NAME = "ft_visitor"
PLAIN_VISITOR_NAME = "plain_visitor"

#: cabinet at the delivery site where finished computations are recorded
RESULTS_CABINET = "ft_results"

_computation_ids = itertools.count(1)


# ---------------------------------------------------------------------------
# the protected visitor
# ---------------------------------------------------------------------------

def _do_local_work(ctx: AgentContext, briefcase: Briefcase, seq: int):
    """Perform this hop's work: meet TASK if named, else sample the local data cabinet."""
    task = briefcase.get("TASK")
    results = briefcase.folder("RESULTS", create=True)
    if task is not None:
        work = Briefcase()
        work.set("FT_ID", briefcase.get("FT_ID"))
        work.set("SEQ", seq)
        outcome = yield ctx.meet(task, work)
        results.push({"site": ctx.site_name, "seq": seq,
                      "value": outcome.value if outcome is not None else None,
                      "at": ctx.now})
    else:
        value = ctx.cabinet("data").get("VALUE")
        results.push({"site": ctx.site_name, "seq": seq, "value": value, "at": ctx.now})
        yield ctx.sleep(float(briefcase.get("WORK_SECONDS", 0.01)))


def _send_releases(ctx: AgentContext, briefcase: Briefcase, ft_id: str,
                   reached_seq: int, done: bool = False):
    """Retire every guard whose hop the computation has now moved safely past.

    Two guards trail the agent (the guards at the two most recently departed
    sites): a guard protecting hop ``p`` retires only once the computation
    has reached hop ``p + 2``.  Keeping two alive means losing the current
    site *and* the most recent guard site simultaneously still leaves a
    guard able to relaunch — the paper's "details ... are complex" remark
    is exactly about this window.

    Release traffic is batch-aware: the retiring guards are grouped by
    guard site and each site gets *one* ``ft-release`` envelope listing
    every released hop (a cyclic itinerary can park several guards at one
    site), instead of one courier per guard.  The envelope rides the
    delivery fabric, and the release agent acknowledges it once.
    """
    guards_folder = briefcase.folder("GUARDS", create=True)
    guards: List[dict] = [guard for guard in guards_folder.elements()
                          if isinstance(guard, dict)]
    keep: List[dict] = []
    retiring_by_site: Dict[str, List[int]] = {}
    for guard in guards:
        protects_seq = int(guard.get("protects_seq", 0))
        retire = done or protects_seq <= reached_seq - 2
        if not retire:
            keep.append(guard)
            continue
        retiring_by_site.setdefault(guard.get("site"), []).append(protects_seq)
    for guard_site, released_seqs in retiring_by_site.items():
        if guard_site == ctx.site_name:
            ctx.cabinet(REARGUARD_CABINET).put(
                "releases", {"ft_id": ft_id, "reached_seq": reached_seq, "done": done,
                             "released_seqs": sorted(released_seqs)})
        else:
            notice = make_release_folder(ft_id, reached_seq, done=done,
                                         released_seqs=released_seqs)
            yield ctx.send_folder(notice, guard_site, RELEASE_AGENT_NAME,
                                  kind=MessageKind.FT_RELEASE)
    guards_folder.replace(keep)


def ft_visitor_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """The rear-guard-protected itinerant agent (state machine, one hop per site)."""
    ft_id = briefcase.get("FT_ID", "ft-unnamed")
    seq = int(briefcase.get("SEQ", 0))
    per_hop = float(briefcase.get("PER_HOP", 0.5))
    max_relaunches = int(briefcase.get("MAX_RELAUNCHES", 2))
    cabinet = ctx.cabinet(REARGUARD_CABINET)

    # Duplicate suppression: a relaunched twin may arrive at a site that the
    # original (merely slow, not dead) agent already processed.
    marker = f"{ft_id}:{seq}"
    if cabinet.contains_element("done_markers", marker):
        yield ctx.sleep(0)
        return "duplicate-hop"
    cabinet.put("done_markers", marker)

    yield from _do_local_work(ctx, briefcase, seq)

    itinerary = briefcase.folder("ITINERARY", create=True)
    if itinerary:
        yield from _send_releases(ctx, briefcase, ft_id, reached_seq=seq)
        next_site = itinerary.dequeue()
        next_seq = seq + 1
        briefcase.set("SEQ", next_seq)
        briefcase.set("TARGET_SITE", next_site)
        guards_folder = briefcase.folder("GUARDS", create=True)
        guards_folder.push({"site": ctx.site_name, "protects_seq": next_seq})

        # Building the jump syscall attaches CODE/HOST/CONTACT to the
        # briefcase, so the snapshot taken right after it is exactly what a
        # relaunch must re-ship.
        jump = ctx.jump(briefcase, next_site)
        snapshot = briefcase.copy()
        yield ctx.spawn(rear_guard_behaviour,
                        guard_snapshot(ft_id, next_seq, snapshot, per_hop, max_relaunches,
                                       view_assisted=bool(briefcase.get("VIEW_ASSISTED",
                                                                        False))),
                        name=f"rear-guard-{ft_id}-{next_seq}")
        yield jump
        return "moved"

    # Final hop: deliver exactly once.  The single done release retires
    # every guard still trailing — including any the regular reached-seq
    # rule would have covered — so each guard site gets exactly one
    # envelope from the landing instead of two release rounds.
    delivery = ctx.cabinet(RESULTS_CABINET)
    if delivery.contains_element("completed_ids", ft_id):
        yield from _send_releases(ctx, briefcase, ft_id, reached_seq=seq, done=True)
        return "duplicate-completion"
    delivery.put("completed_ids", ft_id)
    delivery.put("completions", {
        "ft_id": ft_id,
        "results": briefcase.folder("RESULTS", create=True).elements(),
        "hops": seq,
        "skipped": briefcase.folder("SKIPPED", create=True).elements(),
        "relaunched": bool(briefcase.get("RELAUNCHED", False)),
        "completed_at": ctx.now,
        "site": ctx.site_name,
    })
    yield from _send_releases(ctx, briefcase, ft_id, reached_seq=seq, done=True)
    return "completed"


# ---------------------------------------------------------------------------
# the unprotected baseline
# ---------------------------------------------------------------------------

def plain_visitor_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """The same itinerary walk with no rear guards (E6 baseline)."""
    ft_id = briefcase.get("FT_ID", "plain-unnamed")
    seq = int(briefcase.get("SEQ", 0))

    yield from _do_local_work(ctx, briefcase, seq)

    itinerary = briefcase.folder("ITINERARY", create=True)
    if itinerary:
        next_site = itinerary.dequeue()
        briefcase.set("SEQ", seq + 1)
        briefcase.set("TARGET_SITE", next_site)
        yield ctx.jump(briefcase, next_site)
        return "moved"

    delivery = ctx.cabinet(RESULTS_CABINET)
    if not delivery.contains_element("completed_ids", ft_id):
        delivery.put("completed_ids", ft_id)
        delivery.put("completions", {
            "ft_id": ft_id,
            "results": briefcase.folder("RESULTS", create=True).elements(),
            "hops": seq,
            "skipped": [],
            "relaunched": False,
            "completed_at": ctx.now,
            "site": ctx.site_name,
        })
    return "completed"


register_behaviour(FT_VISITOR_NAME, ft_visitor_behaviour, replace=True)
register_behaviour(PLAIN_VISITOR_NAME, plain_visitor_behaviour, replace=True)


# ---------------------------------------------------------------------------
# launch and collection helpers
# ---------------------------------------------------------------------------

def _build_briefcase(ft_id: str, itinerary: Sequence[str], per_hop: float,
                     max_relaunches: int, work_seconds: float,
                     task: Optional[str], view_assisted: bool = False) -> Briefcase:
    briefcase = Briefcase()
    briefcase.set("FT_ID", ft_id)
    briefcase.set("SEQ", 0)
    briefcase.set("PER_HOP", per_hop)
    briefcase.set("MAX_RELAUNCHES", max_relaunches)
    briefcase.set("WORK_SECONDS", work_seconds)
    if view_assisted:
        briefcase.set("VIEW_ASSISTED", True)
    if task is not None:
        briefcase.set("TASK", task)
    itinerary_folder = briefcase.folder("ITINERARY", create=True)
    for site in itinerary:
        itinerary_folder.enqueue(site)
    return briefcase


def launch_ft_computation(kernel: Kernel, origin: str, itinerary: Sequence[str],
                          ft_id: Optional[str] = None, per_hop: float = 0.5,
                          max_relaunches: int = 2, work_seconds: float = 0.01,
                          task: Optional[str] = None, delay: float = 0.0,
                          view_assisted: bool = False) -> str:
    """Launch a rear-guard-protected computation; returns its computation id.

    The itinerary lists the sites to visit *after* the origin; the last
    entry is the delivery site where the completion record lands.  The
    release-recording agent is installed everywhere as a side effect
    (idempotent).  With ``view_assisted`` the guards additionally react to
    Horus view changes (call
    :func:`repro.fault.install_horus_guard_detection` first).
    """
    install_fault_agents(kernel)
    ft_id = ft_id or f"ft-{next(_computation_ids):05d}"
    briefcase = _build_briefcase(ft_id, itinerary, per_hop, max_relaunches,
                                 work_seconds, task, view_assisted=view_assisted)
    kernel.launch(origin, FT_VISITOR_NAME, briefcase, delay=delay)
    return ft_id


def launch_plain_computation(kernel: Kernel, origin: str, itinerary: Sequence[str],
                             ft_id: Optional[str] = None, work_seconds: float = 0.01,
                             task: Optional[str] = None, delay: float = 0.0) -> str:
    """Launch the unprotected baseline computation; returns its computation id."""
    ft_id = ft_id or f"plain-{next(_computation_ids):05d}"
    briefcase = _build_briefcase(ft_id, itinerary, per_hop=0.5, max_relaunches=0,
                                 work_seconds=work_seconds, task=task)
    kernel.launch(origin, PLAIN_VISITOR_NAME, briefcase, delay=delay)
    return ft_id


def completions(kernel: Kernel, delivery_site: str,
                ft_id: Optional[str] = None) -> List[Dict[str, object]]:
    """Completion records found at *delivery_site* (optionally for one computation)."""
    cabinet = kernel.site(delivery_site).cabinet(RESULTS_CABINET)
    records = [record for record in cabinet.elements("completions")
               if isinstance(record, dict)]
    if ft_id is not None:
        records = [record for record in records if record.get("ft_id") == ft_id]
    return records


def fan_out_ids(base_id: str, branches: int) -> List[str]:
    """Per-branch computation ids for a cloning (fan-out) computation.

    The paper notes fan-out complicates rear guards; giving every branch its
    own id keeps the done-markers and delivery dedup of different branches
    from interfering.
    """
    return [f"{base_id}/branch-{index:03d}" for index in range(branches)]
