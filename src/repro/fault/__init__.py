"""Fault tolerance for mobile computations (paper section 5).

Rear guards, failure detection, and the fault-tolerant itinerant agent the
experiments compare against an unprotected baseline.
"""

from repro.fault.detector import (SUSPICION_CABINET, Suspicion, TimeoutDetector,
                                  subscribe_horus_suspicions)
from repro.fault.ftmove import (FT_VISITOR_NAME, PLAIN_VISITOR_NAME, RESULTS_CABINET,
                                completions, fan_out_ids, ft_visitor_behaviour,
                                launch_ft_computation, launch_plain_computation,
                                plain_visitor_behaviour)
from repro.fault.rearguard import (CHECKPOINTS_FOLDER, GUARD_GROUP, REAR_GUARD_NAME,
                                   REARGUARD_CABINET, RELEASE_AGENT_NAME,
                                   SUSPICIONS_FOLDER, guard_snapshot,
                                   install_fault_agents, install_horus_guard_detection,
                                   make_release_folder, make_relaunch_ack_folder,
                                   pending_guards, prune_released_checkpoints,
                                   rear_guard_behaviour, release_agent_behaviour)
from repro.fault.recovery import (REVIVED_FOLDER, durable_ft_cabinets,
                                  enable_durable_protection,
                                  install_checkpoint_recovery, record_checkpoint,
                                  revive_checkpoints)

__all__ = [
    "TimeoutDetector", "Suspicion", "subscribe_horus_suspicions", "SUSPICION_CABINET",
    "REAR_GUARD_NAME", "RELEASE_AGENT_NAME", "REARGUARD_CABINET",
    "SUSPICIONS_FOLDER", "GUARD_GROUP",
    "rear_guard_behaviour", "release_agent_behaviour", "guard_snapshot",
    "install_fault_agents", "install_horus_guard_detection",
    "pending_guards", "make_release_folder", "make_relaunch_ack_folder",
    "prune_released_checkpoints",
    "CHECKPOINTS_FOLDER", "REVIVED_FOLDER", "durable_ft_cabinets",
    "record_checkpoint", "install_checkpoint_recovery",
    "enable_durable_protection", "revive_checkpoints",
    "FT_VISITOR_NAME", "PLAIN_VISITOR_NAME", "RESULTS_CABINET",
    "ft_visitor_behaviour", "plain_visitor_behaviour",
    "launch_ft_computation", "launch_plain_computation", "completions", "fan_out_ids",
]
