"""Fault tolerance for mobile computations (paper section 5).

Rear guards, failure detection, and the fault-tolerant itinerant agent the
experiments compare against an unprotected baseline.
"""

from repro.fault.detector import (SUSPICION_CABINET, Suspicion, TimeoutDetector,
                                  subscribe_horus_suspicions)
from repro.fault.ftmove import (FT_VISITOR_NAME, PLAIN_VISITOR_NAME, RESULTS_CABINET,
                                completions, fan_out_ids, ft_visitor_behaviour,
                                launch_ft_computation, launch_plain_computation,
                                plain_visitor_behaviour)
from repro.fault.rearguard import (GUARD_GROUP, REAR_GUARD_NAME, REARGUARD_CABINET,
                                   RELEASE_AGENT_NAME, SUSPICIONS_FOLDER, guard_snapshot,
                                   install_fault_agents, install_horus_guard_detection,
                                   make_release_folder, pending_guards,
                                   rear_guard_behaviour, release_agent_behaviour)

__all__ = [
    "TimeoutDetector", "Suspicion", "subscribe_horus_suspicions", "SUSPICION_CABINET",
    "REAR_GUARD_NAME", "RELEASE_AGENT_NAME", "REARGUARD_CABINET",
    "SUSPICIONS_FOLDER", "GUARD_GROUP",
    "rear_guard_behaviour", "release_agent_behaviour", "guard_snapshot",
    "install_fault_agents", "install_horus_guard_detection",
    "pending_guards", "make_release_folder",
    "FT_VISITOR_NAME", "PLAIN_VISITOR_NAME", "RESULTS_CABINET",
    "ft_visitor_behaviour", "plain_visitor_behaviour",
    "launch_ft_computation", "launch_plain_computation", "completions", "fan_out_ids",
]
