"""Shard execution backends: where each round's bursts actually run.

PR 6's sharded kernel *modelled* parallel hosts — E14's aggregate
throughput divided total events by the slowest shard's busy time while
everything still executed serially on one thread.  The backend seam makes
the model real: the :class:`~repro.shard.shardset.ShardSet` computes
horizons and builds a per-round **burst plan** (which shards run, to which
horizon), and the backend decides where those bursts execute:

``inproc``
    Today's serial round loop, bit-identical to PR 6.  The baseline every
    other backend is property-tested against.

``thread``
    One persistent worker thread per shard (a ``ThreadPoolExecutor``).
    Shards share no mutable state during a round: each burst touches only
    its own engine, and cross-shard handoffs go through the
    :class:`~repro.shard.router.MailRouter`'s per-owning-shard locked
    inboxes, drained by the coordinator at the next round start
    (:meth:`begin_round`).  Conservative horizons — not locks — remain the
    correctness mechanism; the locks only make the *enqueue* safe.  Under
    CPython's GIL this parallelises the loop's C-level work (heap ops,
    pickling) but not pure-Python event callbacks — it is the stepping
    stone that proves the seam, while ``process`` delivers real cores.

``process``
    One long-lived spawn worker per shard
    (:class:`~repro.shard.procworker.ProcessBackend`): the coordinator
    sends ``run_to(horizon, budget)`` commands over pipes and receives
    ``(events, busy, now, next_event_time, handoffs)`` replies; facade
    views are served from per-run state digests.

Budget semantics are part of the contract: ``run(max_events)`` consumes
one *global* budget in shard order, so any backend given a finite budget
executes that round serially — identical stop points on every backend is
what the budget-stop tests pin.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple

from repro.core.errors import KernelError
from repro.core.timing import default_timer

__all__ = ["BACKENDS", "InprocBackend", "ShardBackend", "ThreadBackend",
           "make_backend", "process_backend_available"]

#: the valid ``KernelConfig.shard_backend`` values
BACKENDS = ("inproc", "thread", "process")


class ShardBackend:
    """Executes one round's per-shard bursts; subclasses pick the substrate.

    The coordinator calls, per :meth:`ShardSet.run <repro.shard.shardset.
    ShardSet.run>` round: :meth:`begin_round` (make queued cross-shard
    traffic visible to its owners), then :meth:`run_bursts` with the burst
    plan, plus :meth:`advance_clock` for shards idle this round; once per
    ``run()`` call it calls :meth:`finish_run` (distributed backends pull
    state digests here) and, at kernel shutdown, :meth:`close`.
    """

    name = "abstract"
    #: True when shard engines live out-of-process: the facade must serve
    #: stats/table/site views from digests instead of direct engine access
    distributed = False

    def __init__(self, timer: Callable[[], float] = default_timer):
        self.timer = timer

    # -- per-round hooks --------------------------------------------------------

    def begin_round(self) -> int:
        """Deliver queued cross-shard handoffs; returns how many moved."""
        return 0

    def run_bursts(self, plans: List[Tuple[object, Optional[float]]],
                   budget: Optional[int]) -> Tuple[int, float]:
        """Run every ``(shard, horizon)`` burst; horizon ``None`` = drain.

        Returns ``(events_executed, max_single_burst_seconds)``; the
        coordinator derives per-round overhead as round wall-time minus the
        slowest burst.  A finite *budget* forces serial shard-order
        execution so the global stop point matches ``inproc`` exactly.
        """
        raise NotImplementedError

    def advance_clock(self, shard, target: float) -> None:
        """Move an idle shard's clock to *target* (never backwards).

        Replicates the clock advance ``run_until`` would have performed,
        without charging the shard busy time for a zero-event burst.
        """
        clock = shard.engine.loop.clock
        clock._advance_to(max(clock.now, target))

    # -- lifecycle --------------------------------------------------------------

    def finish_run(self) -> None:
        """Called once when ``ShardSet.run`` returns control to the caller."""

    def close(self) -> None:
        """Release worker threads / processes (idempotent)."""

    # -- shared helpers ---------------------------------------------------------

    def _burst(self, shard, horizon: Optional[float],
               budget: Optional[int]) -> Tuple[int, float]:
        loop = shard.engine.loop
        start = self.timer()
        if horizon is None:
            executed = loop.run(max_events=budget)
        else:
            executed = loop.run_until(horizon, max_events=budget)
        elapsed = self.timer() - start
        shard.busy_seconds += elapsed
        return executed, elapsed

    def _serial(self, plans, budget: Optional[int]) -> Tuple[int, float]:
        total = 0
        busy_max = 0.0
        for shard, horizon in plans:
            remaining = None if budget is None else budget - total
            if remaining is not None and remaining <= 0:
                break
            executed, elapsed = self._burst(shard, horizon, remaining)
            total += executed
            if elapsed > busy_max:
                busy_max = elapsed
        return total, busy_max

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InprocBackend(ShardBackend):
    """The serial PR 6 round loop: every burst on the coordinator thread."""

    name = "inproc"

    def run_bursts(self, plans, budget):
        return self._serial(plans, budget)


class ThreadBackend(ShardBackend):
    """One persistent worker thread per shard.

    The pool is created lazily on the first parallel round and reused for
    the kernel's lifetime (persistent workers, no per-round thread spawn
    cost).  Single-shard plans and budgeted runs fall back to the serial
    path — a budget must be consumed in shard order, and one burst gains
    nothing from a pool hop.
    """

    name = "thread"

    def __init__(self, router, n_shards: int,
                 timer: Callable[[], float] = default_timer):
        super().__init__(timer)
        self.router = router
        self.n_shards = int(n_shards)
        self._executor: Optional[ThreadPoolExecutor] = None

    def begin_round(self) -> int:
        return self.router.drain_inboxes()

    def run_bursts(self, plans, budget):
        if not plans:
            return 0, 0.0
        if budget is not None or len(plans) == 1:
            return self._serial(plans, budget)
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_shards,
                thread_name_prefix="repro-shard")
        futures = [self._executor.submit(self._burst, shard, horizon, None)
                   for shard, horizon in plans]
        total = 0
        busy_max = 0.0
        for future in futures:
            executed, elapsed = future.result()
            total += executed
            if elapsed > busy_max:
                busy_max = elapsed
        return total, busy_max

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def make_backend(name: str, router=None, n_shards: int = 0,
                 timer: Callable[[], float] = default_timer) -> ShardBackend:
    """Resolve a ``KernelConfig.shard_backend`` name to a backend instance.

    ``process`` is constructed directly by the kernel facade (it needs the
    full worker build spec, not just the router); asking for it here names
    the entry point so the error is actionable.
    """
    if name == "inproc":
        return InprocBackend(timer)
    if name == "thread":
        if router is None or n_shards <= 0:
            raise KernelError("thread backend needs a router and shard count")
        return ThreadBackend(router, n_shards, timer)
    if name == "process":
        raise KernelError(
            "the process backend is built by the Kernel facade "
            "(repro.shard.procworker.ProcessBackend), not make_backend()")
    raise KernelError(
        f"unknown shard_backend {name!r}; expected one of {BACKENDS}")


# -- process-backend availability probe ----------------------------------------

_PROCESS_PROBE: Optional[bool] = None


def _probe_child(conn) -> None:  # pragma: no cover - runs in the child
    conn.send("ok")
    conn.close()


def process_backend_available() -> bool:
    """True when spawn-context multiprocessing round-trips on this host.

    Sandboxes and exotic platforms sometimes lack working process spawn or
    pipe semantics; tests and benchmarks gate their process arms on this
    (cached) one-shot probe rather than failing mid-run.
    """
    global _PROCESS_PROBE
    if _PROCESS_PROBE is None:
        try:
            import multiprocessing
            ctx = multiprocessing.get_context("spawn")
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_probe_child, args=(child,), daemon=True)
            proc.start()
            child.close()
            ok = parent.poll(30) and parent.recv() == "ok"
            proc.join(10)
            parent.close()
            _PROCESS_PROBE = bool(ok)
        except Exception:
            _PROCESS_PROBE = False
    return _PROCESS_PROBE
