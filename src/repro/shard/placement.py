"""Deterministic site → shard placement.

The sharded kernel partitions the topology's sites across N shards.  The
default placement hashes the site name with CRC-32 — stable across
processes and Python versions, unlike ``hash()`` which is randomised per
interpreter — so the same topology always shards the same way.  An
explicit placement map (``KernelConfig.shard_placement``) overrides the
hash per site, which is how benchmarks co-locate chatty site groups.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Mapping, Optional

from repro.core.errors import KernelError, UnknownSiteError

__all__ = ["default_shard_of", "resolve_placement"]


def default_shard_of(site_name: str, shards: int) -> int:
    """The hash-based home shard of *site_name* (stable across processes)."""
    return zlib.crc32(site_name.encode("utf-8")) % shards


def resolve_placement(site_names: Iterable[str], shards: int,
                      explicit: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
    """Map every site to a shard id in ``[0, shards)``.

    *explicit* entries win over the hash; they must name known sites and
    valid shard ids, and a shard left with no sites is fine (it simply
    idles).
    """
    if shards < 1:
        raise KernelError(f"shards must be >= 1, got {shards}")
    names = list(site_names)
    overrides = dict(explicit or {})
    unknown = sorted(set(overrides) - set(names))
    if unknown:
        raise UnknownSiteError(
            f"shard_placement names unknown sites: {unknown}")
    placement: Dict[str, int] = {}
    for name in names:
        owner = overrides.get(name)
        if owner is None:
            owner = default_shard_of(name, shards)
        else:
            owner = int(owner)
            if not 0 <= owner < shards:
                raise KernelError(
                    f"shard_placement[{name!r}] = {owner} is outside "
                    f"[0, {shards})")
        placement[name] = owner
    return placement
