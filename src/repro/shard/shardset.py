"""The shard coordinator: N engine kernels advanced in conservative rounds.

The :class:`ShardSet` is what the sharded :class:`~repro.core.kernel.Kernel`
facade delegates ``run()`` to.  Each round it:

1. lets the backend deliver queued cross-shard traffic
   (:meth:`~repro.shard.backend.ShardBackend.begin_round`),
2. reads every shard's next-event time and asks the
   :class:`~repro.shard.clocksync.ClockSync` for safe horizons,
3. builds the round's **burst plan** — shards with an event due before
   their horizon — and hands it to the execution backend
   (:mod:`repro.shard.backend`: serial ``inproc``, ``thread`` pool, or
   ``process`` workers).  Shards whose next event lies beyond their
   horizon only get their clock advanced; they are *not* charged busy
   time for a zero-event burst (the PR 6 accounting bracketed every
   ``run_until`` call, inflating the parallel-host model on small rounds).

Rounds repeat until every queue drains, every next event lies beyond
``until``, or the global ``max_events`` budget is exhausted.  The budget
is global — shards share it in shard order, which forces serial execution
on every backend — and exhausting it leaves every clock exactly where its
last event fired, mirroring the single-loop ``run_until`` semantics.

Timing uses an injectable ``timer`` (default
:data:`repro.core.timing.default_timer`) so
tests can pin exactly what lands in ``busy_seconds`` vs ``sync_seconds``
vs ``overhead_seconds`` with a fake clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.timing import default_timer
from repro.shard.backend import InprocBackend, ShardBackend
from repro.shard.clocksync import ClockSync

__all__ = ["Shard", "ShardSet"]


class Shard:
    """One shard: an engine kernel plus its coordination bookkeeping."""

    __slots__ = ("shard_id", "engine", "busy_seconds")

    def __init__(self, shard_id: int, engine):
        self.shard_id = shard_id
        self.engine = engine
        #: wall-clock seconds this shard's loop spent executing events
        #: (accumulated around every run burst; the E14 scaling metric)
        self.busy_seconds = 0.0

    @property
    def sites(self) -> int:
        return len(self.engine.sites)

    @property
    def events_processed(self) -> int:
        return self.engine.loop.processed

    def __repr__(self) -> str:
        return (f"Shard({self.shard_id}, sites={self.sites}, "
                f"t={self.engine.loop.now:.4f})")


class ShardSet:
    """The coordinator advancing every shard under conservative clock sync."""

    def __init__(self, shards: List[Shard], clock_sync: ClockSync,
                 backend: Optional[ShardBackend] = None,
                 timer: Callable[[], float] = default_timer):
        self.shards = list(shards)
        self.clock_sync = clock_sync
        self.backend = backend if backend is not None else InprocBackend(timer)
        self.timer = timer
        #: synchronisation rounds executed (telemetry for E14/E15)
        self.rounds = 0
        #: wall-clock seconds spent reading next-event times, computing
        #: horizons, and building burst plans between bursts
        self.sync_seconds = 0.0
        #: wall-clock seconds of per-round dispatch overhead: round wall
        #: time minus the slowest burst (pool hops, inbox drains, worker
        #: round-trips).  inproc rounds pay total-minus-max serialisation
        #: here too, so E15 can break coordination cost out of the speedup.
        self.overhead_seconds = 0.0
        #: cross-shard messages delivered via deferred inbox/worker paths
        self.handoffs_drained = 0
        #: the facade's own tracer (repro.obs), set by Kernel._init_facade
        #: when observability is on; records one span per run() drive
        self.obs = None

    # -- clocks -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """The conservative global time: the slowest shard's clock."""
        return min(shard.engine.loop.now for shard in self.shards)

    def next_event_times(self) -> Dict[int, Optional[float]]:
        return {shard.shard_id: shard.engine.loop.next_event_time()
                for shard in self.shards}

    # -- running ----------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Advance every shard; returns the total events executed.

        ``until`` is honoured globally: no shard's clock passes it, and on
        a clean finish every clock lands exactly on it.  ``max_events`` is
        a single global budget consumed across shards in shard order.
        """
        total = 0
        timer = self.timer
        backend = self.backend
        budget_stopped = False
        obs = self.obs if (self.obs is not None and self.obs.active) else None
        if obs is not None:
            from repro.obs import infra_trace_id
            run_span = obs.begin(
                infra_trace_id("shard", "coordinator"), "shard-run",
                obs.next_key("run"), kind="shard",
                attrs={"shards": len(self.shards),
                       "rounds_before": self.rounds})
        while True:
            if max_events is not None and total >= max_events:
                # Budget exhausted mid-stream: clocks stay where their
                # last event left them (matching single-loop run_until).
                budget_stopped = True
                break
            sync_start = timer()
            self.handoffs_drained += backend.begin_round()
            next_times = self.next_event_times()
            live = [at for at in next_times.values() if at is not None]
            if not live:
                break
            if until is not None and min(live) > until + 1e-12:
                break
            horizons = self.clock_sync.horizons(next_times)
            self.rounds += 1
            plans: List[Tuple[Shard, Optional[float]]] = []
            for shard in self.shards:
                at = next_times[shard.shard_id]
                if at is None:
                    continue
                horizon = horizons[shard.shard_id]
                if until is not None:
                    horizon = until if horizon is None else min(horizon, until)
                if horizon is not None and at > horizon + 1e-12:
                    # Nothing due this round: advance the clock exactly
                    # as run_until would, but charge no busy time.
                    backend.advance_clock(shard, horizon)
                    continue
                plans.append((shard, horizon))
            self.sync_seconds += timer() - sync_start
            remaining = None if max_events is None else max_events - total
            round_start = timer()
            executed, busy_max = backend.run_bursts(plans, remaining)
            self.overhead_seconds += max(
                0.0, (timer() - round_start) - busy_max)
            total += executed
        if until is not None and not budget_stopped:
            # Clean finish: every shard's clock lands on the target, exactly
            # like the single-loop run_until (events beyond it stay queued).
            for shard in self.shards:
                backend.advance_clock(shard, until)
        backend.finish_run()
        if obs is not None:
            obs.finish(run_span, events=total,
                       rounds=self.rounds - run_span.attrs["rounds_before"],
                       handoffs=self.handoffs_drained)
        return total

    def close(self) -> None:
        """Shut down the execution backend (worker threads / processes)."""
        self.backend.close()

    # -- telemetry --------------------------------------------------------------

    def busy_summary(self) -> Dict[str, float]:
        """Per-shard busy wall-time plus the parallel-model aggregate."""
        per_shard = {f"shard{shard.shard_id}": shard.busy_seconds
                     for shard in self.shards}
        per_shard["max_busy"] = max(
            (shard.busy_seconds for shard in self.shards), default=0.0)
        per_shard["total_busy"] = sum(shard.busy_seconds for shard in self.shards)
        per_shard["sync_seconds"] = self.sync_seconds
        per_shard["overhead_seconds"] = self.overhead_seconds
        return per_shard

    def __repr__(self) -> str:
        return (f"ShardSet({len(self.shards)} shards, "
                f"backend={self.backend.name}, rounds={self.rounds}, "
                f"now={self.now:.4f})")
