"""The shard coordinator: N engine kernels advanced in conservative rounds.

The :class:`ShardSet` is what the sharded :class:`~repro.core.kernel.Kernel`
facade delegates ``run()`` to.  Each round it:

1. reads every shard's next-event time,
2. asks the :class:`~repro.shard.clocksync.ClockSync` for safe horizons,
3. runs each shard's event loop up to ``min(horizon, until)`` under the
   remaining global event budget, accumulating per-shard busy wall-time
   (the E14 throughput model: shards stand in for parallel hosts, so
   aggregate throughput is total events over the *maximum* per-shard busy
   time, with coordination overhead reported separately).

Rounds repeat until every queue drains, every next event lies beyond
``until``, or the global ``max_events`` budget is exhausted.  The budget
is global — shards share it in shard order — and exhausting it leaves
every clock exactly where its last event fired, mirroring the single-loop
``run_until`` semantics.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.shard.clocksync import ClockSync

__all__ = ["Shard", "ShardSet"]


class Shard:
    """One shard: an engine kernel plus its coordination bookkeeping."""

    __slots__ = ("shard_id", "engine", "busy_seconds")

    def __init__(self, shard_id: int, engine):
        self.shard_id = shard_id
        self.engine = engine
        #: wall-clock seconds this shard's loop spent executing events
        #: (accumulated around every run burst; the E14 scaling metric)
        self.busy_seconds = 0.0

    @property
    def sites(self) -> int:
        return len(self.engine.sites)

    @property
    def events_processed(self) -> int:
        return self.engine.loop.processed

    def __repr__(self) -> str:
        return (f"Shard({self.shard_id}, sites={self.sites}, "
                f"t={self.engine.loop.now:.4f})")


class ShardSet:
    """The coordinator advancing every shard under conservative clock sync."""

    def __init__(self, shards: List[Shard], clock_sync: ClockSync):
        self.shards = list(shards)
        self.clock_sync = clock_sync
        #: synchronisation rounds executed (telemetry for E14)
        self.rounds = 0
        #: wall-clock seconds spent computing horizons between bursts
        self.sync_seconds = 0.0

    # -- clocks -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """The conservative global time: the slowest shard's clock."""
        return min(shard.engine.loop.now for shard in self.shards)

    def next_event_times(self) -> Dict[int, Optional[float]]:
        return {shard.shard_id: shard.engine.loop.next_event_time()
                for shard in self.shards}

    # -- running ----------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Advance every shard; returns the total events executed.

        ``until`` is honoured globally: no shard's clock passes it, and on
        a clean finish every clock lands exactly on it.  ``max_events`` is
        a single global budget consumed across shards in shard order.
        """
        total = 0
        perf = time.perf_counter
        while True:
            if max_events is not None and total >= max_events:
                # Budget exhausted mid-stream: clocks stay where their last
                # event left them (matching single-loop run_until).
                return total
            sync_start = perf()
            next_times = self.next_event_times()
            live = [at for at in next_times.values() if at is not None]
            if not live:
                break
            if until is not None and min(live) > until + 1e-12:
                break
            horizons = self.clock_sync.horizons(next_times)
            self.rounds += 1
            self.sync_seconds += perf() - sync_start
            for shard in self.shards:
                if next_times[shard.shard_id] is None:
                    continue
                remaining = None if max_events is None else max_events - total
                if remaining is not None and remaining <= 0:
                    break
                horizon = horizons[shard.shard_id]
                if until is not None:
                    horizon = until if horizon is None else min(horizon, until)
                loop = shard.engine.loop
                burst_start = perf()
                if horizon is None:
                    executed = loop.run(max_events=remaining)
                else:
                    executed = loop.run_until(horizon, max_events=remaining)
                shard.busy_seconds += perf() - burst_start
                total += executed
        if until is not None:
            # Clean finish: every shard's clock lands on the target, exactly
            # like the single-loop run_until (events beyond it stay queued).
            for shard in self.shards:
                clock = shard.engine.loop.clock
                clock._advance_to(max(clock.now, until))
        return total

    # -- telemetry --------------------------------------------------------------

    def busy_summary(self) -> Dict[str, float]:
        """Per-shard busy wall-time plus the parallel-model aggregate."""
        per_shard = {f"shard{shard.shard_id}": shard.busy_seconds
                     for shard in self.shards}
        per_shard["max_busy"] = max(
            (shard.busy_seconds for shard in self.shards), default=0.0)
        per_shard["total_busy"] = sum(shard.busy_seconds for shard in self.shards)
        per_shard["sync_seconds"] = self.sync_seconds
        return per_shard

    def __repr__(self) -> str:
        return (f"ShardSet({len(self.shards)} shards, rounds={self.rounds}, "
                f"now={self.now:.4f})")
