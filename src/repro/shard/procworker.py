"""The process shard backend: one long-lived spawn worker per shard.

This is the backend that turns the E14 parallel-host *model* into real
wall-clock speedup on multi-core hosts — each shard engine is a full
:class:`~repro.core.kernel.Kernel` living in its own interpreter, so
pure-Python event execution escapes the GIL entirely.

Wire protocol (pickle over ``multiprocessing`` pipes, one command in /
one reply out, strictly alternating per worker):

* coordinator -> worker: ``(command, *operands)`` tuples.  The core
  command is ``("run_to", horizon, budget, handoffs)`` — deliver the
  listed cross-shard handoffs, run the loop to *horizon* under *budget*,
  and reply with ``(executed, busy_seconds, outbound_handoffs, dirty)``.
  The rest are state mirroring (``digest``, ``advance_clock``) and facade
  delegation (``call``, ``transport``, ``partition``, ``add_site``, ...).
* worker -> coordinator: ``("ok", (value, now, next_event_time))`` or
  ``("error", summary, traceback)``.  Every reply carries the worker's
  clock and next-event time so the coordinator's
  :class:`MirrorLoop` never goes stale after a command that scheduled
  events (a ``launch`` between rounds must move the mirrored next-event
  time, or the coordinator would believe the cluster idle and stop).

Cross-shard mail is pickled at the boundary: a worker spools outbound
``(arrival, message)`` pairs during its burst (the
:class:`WorkerRouter`), ships them with its reply, and the coordinator
routes each to the destination proxy's pending list; they ride the next
command to that worker.  Arrival timestamps are fixed at send time and
are at least every granted horizon (the same argument that makes the
thread backend's inbox deferral safe), so a handoff can never be needed
before it has crossed.

Facade views (``stats``, ``table``, ``sites``, ``event_log``) are served
from per-run **state digests**: after each ``ShardSet.run`` the
coordinator pulls one digest per worker — full stats state, new/changed
:class:`~repro.core.lifecycle.AgentRecord` deltas, site flags, appended
event-log lines — and refreshes the proxy mirrors.  Mid-run the mirrors
lag by design; everything tests read (counters, results) is read after
``run()`` returns.

Known limits (all raise a clear ``KernelError``): behaviours must be
picklable or registered in importable modules (the worker re-imports the
registry's modules; ``__main__``-only behaviours cannot rehydrate),
coordinator-side event scheduling on ``kernel.loop`` is unavailable, and
so are ``on_site_added``/``on_site_recovered`` subscriptions and per-agent
site queries (``residents()``/``cabinet()``).
"""

from __future__ import annotations

import importlib
import importlib.machinery
import multiprocessing
import random
import sys
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.errors import KernelError, UnknownSiteError
from repro.core.lifecycle import AgentRecord, make_retention
from repro.core.timing import PAST_EPSILON, default_timer
from repro.net.stats import NetworkStats
from repro.obs import MetricsRegistry, SpanMirror
from repro.shard.backend import ShardBackend
from repro.shard.router import ShardBoundary, ShardContext
from repro.store.policy import resolve_policy

__all__ = ["ProcessBackend", "ProcessEngineProxy", "WorkerSpec",
           "preload_module_names", "worker_main"]


# ==============================================================================
# shared: the worker build spec
# ==============================================================================

@dataclass
class WorkerSpec:
    """Everything a spawn worker needs to rebuild its shard engine.

    Must pickle cleanly — the facade probes that before spawning anything
    so a bad config fails fast with a useful error instead of a cryptic
    mid-spawn traceback.
    """

    shard_id: int
    topology: Any
    transport: Any  # a transport name or class (instances are rejected upstream)
    config: Any
    install_system_agents: bool
    retention: Any
    owned: FrozenSet[str]
    placement: Dict[str, int]
    #: modules imported before the engine is built, so behaviours that are
    #: registered at import time exist in the worker's default registry
    preload_modules: Tuple[str, ...] = field(default_factory=tuple)


def _spawn_importable(module: str) -> bool:
    """Whether a freshly spawned interpreter could import ``module``.

    Bypasses ``sys.modules`` on purpose: modules loaded from explicit file
    paths (a test importing an example script by location) are present in
    this process but unreachable by name in a child, so shipping them as
    preloads would crash worker startup.
    """
    top = module.split(".")[0]
    if top in sys.builtin_module_names:
        return True
    try:
        return importlib.machinery.PathFinder().find_spec(top) is not None
    except (ImportError, ValueError):
        return False


def preload_module_names(registry) -> Tuple[str, ...]:
    """The defining modules of every registered behaviour that a spawned
    worker could re-import (minus ``__main__`` and path-loaded ad-hoc
    modules — behaviours from those cannot cross the process boundary,
    and launching one in a worker raises unknown-behaviour there)."""
    modules = set()
    for name in registry:
        behaviour = registry.resolve(name)
        module = getattr(behaviour, "__module__", None)
        if module and module != "__main__" and _spawn_importable(module):
            modules.add(module)
    return tuple(sorted(modules))


# ==============================================================================
# worker side (runs in the spawned child)
# ==============================================================================

class WorkerRouter:
    """Worker-side stand-in for the MailRouter: placement + outbound spool.

    The engine's transport consults a normal :class:`ShardBoundary` over
    this router, so the send-time handoff semantics are identical to the
    in-process backends; the only difference is that a dispatched message
    lands in ``outbound`` (to ride the next reply) instead of directly on
    the destination loop.
    """

    def __init__(self, shard_id: int, placement: Dict[str, int]):
        self.shard_id = shard_id
        self.placement = dict(placement)
        self.engine = None  # late-bound: the worker's engine kernel
        self.outbound: List[Tuple[float, Any]] = []
        self.topology_dirty = False

    def boundary_for(self, shard_id: int) -> ShardBoundary:
        return ShardBoundary(self, shard_id)

    def clock_sync_invalidate(self) -> None:
        # Reported to the coordinator with the next reply; the real
        # ClockSync lives coordinator-side.
        self.topology_dirty = True

    def assign(self, site_name: str, shard_id: int) -> None:
        self.placement[site_name] = shard_id

    def unassign(self, site_name: str) -> None:
        self.placement.pop(site_name, None)

    def dispatch(self, origin_shard: int, message, delay: float):
        from repro.shard.router import _record_handoff_span
        arrival = self.engine.loop.now + delay
        _record_handoff_span(self.engine, origin_shard,
                             self.placement[message.destination], message,
                             arrival)
        self.engine.stats.record_shard_handoff(message.size_bytes())
        entry = (arrival, message)
        self.outbound.append(entry)
        return entry


class _Worker:
    """The command loop around one shard engine (child process)."""

    def __init__(self, conn, spec: WorkerSpec):
        for module in spec.preload_modules:
            importlib.import_module(module)
        from repro.core.kernel import Kernel  # after preloads, like the parent
        self.conn = conn
        self.router = WorkerRouter(spec.shard_id, spec.placement)
        self.kernel = Kernel(
            topology=spec.topology, transport=spec.transport,
            config=spec.config,
            install_system_agents=spec.install_system_agents,
            retention=spec.retention,
            _shard_ctx=ShardContext(spec.shard_id, spec.owned, self.router))
        self.router.engine = self.kernel
        #: agent_id -> last (state, steps, site) shipped, for table deltas
        self._sent_markers: Dict[str, tuple] = {}
        self._event_log_sent = 0
        self._span_seq = 0

    # -- command handlers -------------------------------------------------------

    def _deliver_handoffs(self, handoffs: Sequence[Tuple[float, Any]]) -> None:
        if not handoffs:
            return
        loop = self.kernel.loop
        transport = self.kernel.transport
        stats = self.kernel.stats
        now = loop.now
        # Stable arrival sort: the coordinator appends in (origin, seq)
        # order, so this yields the same total order as the thread
        # backend's inbox drain.
        handoffs = sorted(handoffs, key=lambda entry: entry[0])
        for arrival, message in handoffs:
            if arrival < now - PAST_EPSILON:
                stats.record_shard_late_arrival()
            loop.schedule_at(
                max(arrival, now),
                lambda m=message: transport._deliver(m),
                label=f"shard-handoff-{message.message_id}")

    def cmd_run_to(self, horizon, budget, handoffs):
        self._deliver_handoffs(handoffs)
        loop = self.kernel.loop
        start = default_timer()
        if horizon is None:
            executed = loop.run(max_events=budget)
        else:
            executed = loop.run_until(horizon, max_events=budget)
        busy = default_timer() - start
        outbound, self.router.outbound = self.router.outbound, []
        dirty, self.router.topology_dirty = self.router.topology_dirty, False
        return (executed, busy, outbound, dirty)

    def cmd_advance_clock(self, target, handoffs):
        self._deliver_handoffs(handoffs)
        clock = self.kernel.loop.clock
        clock._advance_to(max(clock.now, target))
        return None

    def cmd_call(self, method, args, kwargs):
        return getattr(self.kernel, method)(*args, **kwargs)

    def cmd_transport(self, method, args, kwargs):
        getattr(self.kernel.transport, method)(*args, **kwargs)
        return None

    def cmd_partition(self, groups):
        self.kernel.topology.set_partition(groups)
        self.kernel.transport.flush_outboxes(only_unroutable=True,
                                             cause="partition")
        return None

    def cmd_heal(self):
        self.kernel.topology.heal_partition()
        return None

    def cmd_add_site(self, name, links, install_system_agents, owner):
        self.router.assign(name, owner)
        try:
            self.kernel.add_site(name, links=links,
                                 install_system_agents=install_system_agents)
        except BaseException:
            self.router.unassign(name)
            raise
        return None

    def cmd_site_assigned(self, name, links, owner):
        """A site joined on another shard: mirror placement + topology."""
        self.router.assign(name, owner)
        topology = self.kernel.topology
        if not topology.has_site(name):
            topology.add_site(name)
        for link in links:
            peer, spec = link if isinstance(link, tuple) else (link, None)
            topology.add_link(name, peer, spec)
        self.router.topology_dirty = True
        return None

    def cmd_digest(self):
        kernel = self.kernel
        table = kernel.table
        new_records: List[AgentRecord] = []
        for agent_id, entry in table.entries.items():
            marker = (entry.state, entry.steps, entry.site_name)
            if self._sent_markers.get(agent_id) != marker:
                record = entry if isinstance(entry, AgentRecord) \
                    else AgentRecord(entry)
                new_records.append(record)
                self._sent_markers[agent_id] = marker
        evicted = [agent_id for agent_id in self._sent_markers
                   if agent_id not in table.entries]
        for agent_id in evicted:
            del self._sent_markers[agent_id]
        sites = {name: (site.alive, site.resident_count(), site.undeliverable,
                        site.background_load, site.capacity)
                 for name, site in kernel.sites.items()}
        # Absolute-sequence deltas: the bounded EventLog / span ring may
        # have dropped old entries, so positional slicing would misalign.
        self._event_log_sent, new_events = \
            kernel.event_log.since(self._event_log_sent)
        self._span_seq, new_spans = kernel.obs.since(self._span_seq)
        return {
            "stats": kernel.stats.export_state(),
            "processed": kernel.loop.processed,
            "counters": (kernel.meets, kernel.transmits, kernel.arrivals,
                         kernel.undeliverable),
            "table_new": new_records,
            "table_evicted": evicted,
            "table_counts": table.state_counts(),
            "table_kinds": table.ledger_entry_kinds(),
            "sites": sites,
            "event_log": new_events,
            "spans": new_spans,
            "metrics": kernel.metrics.export_state(),
        }

    # -- the loop ---------------------------------------------------------------

    def serve(self) -> None:
        handlers = {
            "run_to": self.cmd_run_to,
            "advance_clock": self.cmd_advance_clock,
            "call": self.cmd_call,
            "transport": self.cmd_transport,
            "partition": self.cmd_partition,
            "heal": self.cmd_heal,
            "add_site": self.cmd_add_site,
            "site_assigned": self.cmd_site_assigned,
            "digest": self.cmd_digest,
        }
        loop = None
        while True:
            command = self.conn.recv()
            name = command[0]
            if name == "stop":
                self.conn.send(("ok", (None, self.kernel.loop.now, None)))
                return
            try:
                value = handlers[name](*command[1:])
                loop = self.kernel.loop
                reply = ("ok", (value, loop.now, loop.next_event_time()))
            except BaseException as error:
                reply = ("error", f"{type(error).__name__}: {error}",
                         traceback.format_exc())
            try:
                self.conn.send(reply)
            except Exception as error:
                # Unpicklable reply value: report instead of dying silently.
                self.conn.send(("error",
                                f"unpicklable reply to {name!r}: {error}", ""))


def worker_main(conn, spec: WorkerSpec) -> None:  # pragma: no cover - child
    """Entry point of a spawned shard worker."""
    try:
        _Worker(conn, spec).serve()
    except EOFError:
        pass  # coordinator went away; nothing to clean up, state is ours
    except BaseException:
        # Construction failed: push the traceback so the first recv in the
        # parent produces an actionable error.
        try:
            conn.send(("error", "worker startup failed", traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ==============================================================================
# coordinator side: mirrors + proxy + backend
# ==============================================================================

class _MirrorClock:
    """Duck-types SimClock over the mirror (advances are coordinator-local)."""

    __slots__ = ("_loop",)

    def __init__(self, loop: "MirrorLoop"):
        self._loop = loop

    @property
    def now(self) -> float:
        return self._loop.now

    def _advance_to(self, timestamp: float) -> None:
        self._loop.advance_local(timestamp)


class MirrorLoop:
    """Coordinator-side mirror of a worker's event-loop clock and queue head.

    ``now``/``next_event_time``/``processed`` are refreshed from every
    worker reply; pending (not yet shipped) cross-shard handoffs count
    toward ``next_event_time`` so horizon computation and the run loop's
    termination test see them.  Scheduling raises: events live worker-side.
    """

    def __init__(self, proxy: "ProcessEngineProxy"):
        self._proxy = proxy
        self.now = 0.0
        self._next: Optional[float] = None
        self.processed = 0
        self.clock = _MirrorClock(self)

    def apply(self, now: float, next_time: Optional[float],
              executed: int = 0) -> None:
        if now > self.now:
            self.now = now
        self._next = next_time
        self.processed += executed

    def advance_local(self, timestamp: float) -> None:
        if timestamp > self.now:
            self.now = timestamp

    def next_event_time(self) -> Optional[float]:
        best = self._next
        for arrival, _message in self._proxy.pending:
            at = max(arrival, self.now)
            if best is None or at < best:
                best = at
        return best

    def _no_schedule(self, *_args, **_kwargs):
        raise KernelError(
            "the process shard backend keeps event loops worker-side; "
            "coordinator code cannot schedule events on a shard "
            "(use shard_backend='thread' or 'inproc' for loop-level access)")

    schedule = _no_schedule
    schedule_at = _no_schedule
    schedule_many = _no_schedule

    def __repr__(self) -> str:
        return (f"MirrorLoop(shard={self._proxy.shard_id}, now={self.now:.6f}, "
                f"processed={self.processed})")


class MirrorTransport:
    """Facade-visible transport handle: control RPCs only, no sends."""

    def __init__(self, proxy: "ProcessEngineProxy", name: str):
        self._proxy = proxy
        self.name = name

    def on_site_down(self, site_name: str) -> None:
        self._proxy._request("transport", "on_site_down", (site_name,), {})

    def on_site_up(self, site_name: str) -> None:
        self._proxy._request("transport", "on_site_up", (site_name,), {})

    def flush_outboxes(self, only_unroutable: bool = False,
                       cause: str = "manual") -> None:
        self._proxy._request("transport", "flush_outboxes", (),
                             {"only_unroutable": only_unroutable,
                              "cause": cause})

    def __repr__(self) -> str:
        return f"MirrorTransport({self.name!r}, shard={self._proxy.shard_id})"


class SiteMirror:
    """Digest-backed read view of one worker-owned site."""

    __slots__ = ("name", "alive", "undeliverable", "background_load",
                 "capacity", "_resident_count")

    def __init__(self, name: str):
        self.name = name
        self.alive = True
        self.undeliverable = 0
        self.background_load = 0.0
        self.capacity = 1.0
        self._resident_count = 0

    def resident_count(self) -> int:
        return self._resident_count

    def load_metric(self, active_agents: int) -> float:
        capacity = self.capacity if self.capacity > 0 else 1e-9
        return (active_agents + self.background_load) / capacity

    def _digest_only(self, *_args, **_kwargs):
        raise KernelError(
            f"site {self.name!r} lives in a shard worker process; the "
            f"coordinator serves digests (alive/load/counters) only — "
            f"per-agent residents() / cabinet() queries need "
            f"shard_backend='thread' or 'inproc'")

    residents = _digest_only
    cabinet = _digest_only
    install = _digest_only
    is_installed = _digest_only

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"SiteMirror({self.name!r}, {state}, residents~{self._resident_count})"


class ShardTableMirror:
    """One worker's AgentTable, reconstructed from record deltas.

    Implements exactly the part surface
    :class:`~repro.core.lifecycle.MergedAgentTable` consumes, so the
    facade's ``kernel.table`` works identically on the process backend.
    Counters come from the worker's own ``state_counts()`` (authoritative),
    entries are :class:`AgentRecord` snapshots.
    """

    def __init__(self, retention):
        self.retention = make_retention(retention)
        self.entries: Dict[str, AgentRecord] = {}
        self._by_name: Dict[str, Dict[str, AgentRecord]] = {}
        self._counts = {"launched": 0, "active": 0, "completed": 0,
                        "failed": 0, "killed": 0, "archived": 0,
                        "evicted": 0, "retained": 0}
        self._kinds = {"instances": 0, "records": 0}

    def apply(self, new_records, evicted, counts, kinds) -> None:
        for record in new_records:
            self.entries[record.agent_id] = record
            self._by_name.setdefault(record.name, {})[record.agent_id] = record
        for agent_id in evicted:
            entry = self.entries.pop(agent_id, None)
            if entry is not None:
                named = self._by_name.get(entry.name)
                if named is not None:
                    named.pop(agent_id, None)
                    if not named:
                        del self._by_name[entry.name]
        self._counts = dict(counts)
        self._kinds = dict(kinds)

    def named(self, name: str) -> List[AgentRecord]:
        named = self._by_name.get(name)
        return list(named.values()) if named else []

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, agent_id: str) -> bool:
        return agent_id in self.entries

    def __getattr__(self, name: str) -> int:
        if name in ("launched", "completed", "failed", "killed",
                    "archived", "evicted"):
            return self.__dict__["_counts"].get(name, 0)
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    @property
    def terminal(self) -> int:
        counts = self._counts
        return counts["completed"] + counts["failed"] + counts["killed"]

    @property
    def active(self) -> int:
        return self._counts["launched"] - self.terminal

    def state_counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def ledger_entry_kinds(self) -> Dict[str, int]:
        return dict(self._kinds)

    def __repr__(self) -> str:
        return (f"ShardTableMirror(retained={len(self.entries)}, "
                f"launched={self._counts['launched']})")


class _WorkerHandle:
    """One worker's pipe + process, with error-translating request helpers."""

    __slots__ = ("shard_id", "conn", "process")

    def __init__(self, shard_id: int, conn, process):
        self.shard_id = shard_id
        self.conn = conn
        self.process = process

    def send(self, command: tuple) -> None:
        try:
            self.conn.send(command)
        except (BrokenPipeError, OSError) as error:
            raise KernelError(
                f"shard {self.shard_id} worker is gone "
                f"(exitcode={self.process.exitcode}): {error}") from None

    def recv(self):
        try:
            reply = self.conn.recv()
        except EOFError:
            raise KernelError(
                f"shard {self.shard_id} worker died "
                f"(exitcode={self.process.exitcode})") from None
        if reply[0] == "error":
            detail = f"\n{reply[2]}" if reply[2] else ""
            raise KernelError(
                f"shard {self.shard_id} worker failed: {reply[1]}{detail}")
        return reply[1]

    def request(self, *command):
        self.send(command)
        return self.recv()


class ProcessEngineProxy:
    """The facade-visible 'engine' for one worker process.

    Presents the slice of the engine-kernel surface the sharded facade
    touches: delegation methods become RPCs, state attributes are mirrors
    refreshed from worker replies and per-run digests.
    """

    def __init__(self, backend: "ProcessBackend", handle: _WorkerHandle,
                 spec: WorkerSpec, transport_name: str):
        self.backend = backend
        self.handle = handle
        self.shard_id = spec.shard_id
        self.loop = MirrorLoop(self)
        self.stats = NetworkStats()
        self.table = ShardTableMirror(
            spec.retention if spec.retention is not None
            else spec.config.retention)
        self.sites: Dict[str, SiteMirror] = {
            name: SiteMirror(name) for name in sorted(spec.owned)}
        self.stores: Dict[str, Any] = {}
        self.durability = resolve_policy(spec.config.durability)
        self.transport = MirrorTransport(self, transport_name)
        # Coordinator-side placeholder matching the engine's seed derivation;
        # the authoritative stream lives in the worker.
        self.rng = random.Random(spec.config.rng_seed + spec.shard_id)
        self.event_log: List[tuple] = []
        #: span mirror + metrics mirror, refreshed from per-run digests so
        #: the facade's TracerView/MetricsView read process shards exactly
        #: like in-process engines
        self.obs = SpanMirror(enabled=spec.config.obs_enabled)
        self.metrics = MetricsRegistry()
        self.meets = 0
        self.transmits = 0
        self.arrivals = 0
        self.undeliverable = 0
        #: cross-shard handoffs awaiting shipment with the next command
        self.pending: List[Tuple[float, Any]] = []

    # -- plumbing ---------------------------------------------------------------

    def take_pending(self) -> List[Tuple[float, Any]]:
        pending, self.pending = self.pending, []
        return pending

    def _request(self, *command):
        value, now, next_time = self.handle.request(*command)
        self.loop.apply(now, next_time)
        return value

    # -- facade delegation surface ----------------------------------------------

    def launch(self, site_name, behaviour, briefcase=None, name=None,
               system=False, delay=0.0):
        return self._request("call", "launch", (site_name, behaviour, briefcase),
                             {"name": name, "system": system, "delay": delay})

    def launch_many(self, requests, delay=0.0):
        return self._request("call", "launch_many", (list(requests),),
                             {"delay": delay})

    def install_agent(self, site_name, name, behaviour, system=False,
                      replace=False):
        return self._request("call", "install_agent",
                             (site_name, name, behaviour),
                             {"system": system, "replace": replace})

    def crash_site(self, name):
        self._request("call", "crash_site", (name,), {})
        mirror = self.sites.get(name)
        if mirror is not None:
            mirror.alive = False

    def recover_site(self, name):
        self._request("call", "recover_site", (name,), {})
        if not self.durability.durable:
            # Instant recovery under policy "none"; durable replays finish
            # worker-side and the mirror refreshes at the next digest.
            mirror = self.sites.get(name)
            if mirror is not None:
                mirror.alive = True

    def make_durable(self, cabinet_name, sites=None):
        return self._request("call", "make_durable", (cabinet_name,),
                             {"sites": sites})

    def log_event(self, agent_id, site_name, message):
        self._request("call", "log_event", (agent_id, site_name, message), {})

    def add_site(self, name, links=(), install_system_agents=None,
                 owner: Optional[int] = None) -> SiteMirror:
        self._request("add_site", name, list(links), install_system_agents,
                      self.shard_id if owner is None else owner)
        mirror = SiteMirror(name)
        self.sites[name] = mirror
        return mirror

    def site_assigned(self, name, links, owner):
        self._request("site_assigned", name, list(links), owner)

    def partition(self, groups):
        self._request("partition", [list(group) for group in groups])

    def heal_partition(self):
        self._request("heal")

    def on_site_added(self, callback):
        raise KernelError(
            "on_site_added subscriptions cannot cross the process boundary; "
            "use shard_backend='thread' or 'inproc'")

    def on_site_recovered(self, callback):
        raise KernelError(
            "on_site_recovered subscriptions cannot cross the process "
            "boundary; use shard_backend='thread' or 'inproc'")

    # -- digest application -----------------------------------------------------

    def apply_digest(self, digest: Dict[str, Any]) -> None:
        self.stats.load_state(digest["stats"])
        self.loop.processed = digest["processed"]
        (self.meets, self.transmits,
         self.arrivals, self.undeliverable) = digest["counters"]
        self.table.apply(digest["table_new"], digest["table_evicted"],
                         digest["table_counts"], digest["table_kinds"])
        for name, (alive, residents, undeliverable,
                   background_load, capacity) in digest["sites"].items():
            mirror = self.sites.get(name)
            if mirror is None:
                mirror = self.sites[name] = SiteMirror(name)
            mirror.alive = alive
            mirror._resident_count = residents
            mirror.undeliverable = undeliverable
            mirror.background_load = background_load
            mirror.capacity = capacity
        self.event_log.extend(digest["event_log"])
        self.obs.absorb(digest["spans"])
        self.metrics.load_state(digest["metrics"])

    def __repr__(self) -> str:
        return (f"ProcessEngineProxy(shard={self.shard_id}, "
                f"sites={len(self.sites)}, now={self.loop.now:.4f})")


class ProcessBackend(ShardBackend):
    """Spawns one worker per shard and drives rounds over pipes."""

    name = "process"
    distributed = True

    def __init__(self, specs: Sequence[WorkerSpec], transport_name: str,
                 timer=default_timer):
        super().__init__(timer)
        self._handles: List[_WorkerHandle] = []
        self.proxies: List[ProcessEngineProxy] = []
        #: shared with the facade's MailRouter so late-joining sites route
        self.placement: Dict[str, int] = {}
        #: coordinator ClockSync, set by the facade; workers report
        #: topology growth and the dirty flag propagates here
        self.clock_sync = None
        self._closed = False
        ctx = multiprocessing.get_context("spawn")
        try:
            for spec in specs:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=worker_main, args=(child_conn, spec),
                    name=f"repro-shard-{spec.shard_id}", daemon=True)
                process.start()
                child_conn.close()
                handle = _WorkerHandle(spec.shard_id, parent_conn, process)
                self._handles.append(handle)
                self.proxies.append(
                    ProcessEngineProxy(self, handle, spec, transport_name))
        except BaseException:
            self.close()
            raise

    # -- round execution --------------------------------------------------------

    def run_bursts(self, plans, budget):
        if not plans:
            return 0, 0.0
        if budget is not None or len(plans) == 1:
            total = 0
            busy_max = 0.0
            for shard, horizon in plans:
                remaining = None if budget is None else budget - total
                if remaining is not None and remaining <= 0:
                    break
                proxy = shard.engine
                proxy.handle.send(
                    ("run_to", horizon, remaining, proxy.take_pending()))
                executed, busy = self._collect(shard)
                total += executed
                if busy > busy_max:
                    busy_max = busy
            return total, busy_max
        for shard, horizon in plans:
            proxy = shard.engine
            proxy.handle.send(("run_to", horizon, None, proxy.take_pending()))
        total = 0
        busy_max = 0.0
        for shard, _horizon in plans:
            executed, busy = self._collect(shard)
            total += executed
            if busy > busy_max:
                busy_max = busy
        return total, busy_max

    def _collect(self, shard) -> Tuple[int, float]:
        proxy = shard.engine
        (executed, busy, outbound, dirty), now, next_time = \
            proxy.handle.recv()
        proxy.loop.apply(now, next_time, executed)
        shard.busy_seconds += busy
        if dirty and self.clock_sync is not None:
            self.clock_sync.invalidate()
        for arrival, message in outbound:
            owner = self.placement[message.destination]
            self.proxies[owner].pending.append((arrival, message))
        return executed, busy

    def finish_run(self) -> None:
        """Push lagging clocks + parked handoffs, then pull state digests."""
        for proxy in self.proxies:
            proxy.handle.send(
                ("advance_clock", proxy.loop.now, proxy.take_pending()))
        for proxy in self.proxies:
            _value, now, next_time = proxy.handle.recv()
            proxy.loop.apply(now, next_time)
        for proxy in self.proxies:
            proxy.handle.send(("digest",))
        for proxy in self.proxies:
            digest, now, next_time = proxy.handle.recv()
            proxy.loop.apply(now, next_time)
            proxy.apply_digest(digest)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.conn.send(("stop",))
            except Exception:
                pass
        for handle in self._handles:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
            try:
                handle.conn.close()
            except Exception:
                pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return f"ProcessBackend({len(self.proxies)} workers, {state})"
