"""Cross-shard mail routing: the shard-boundary transport adapter.

Each shard runs its own :class:`~repro.net.simclock.EventLoop` and its own
transport, with endpoints registered only for the sites it owns.  When a
transport is about to schedule a delivery whose destination lives on
another shard, the :class:`ShardBoundary` intercepts it (see
``Transport.send``) and the :class:`MailRouter` schedules the delivery
directly on the owning shard's loop instead.

The handover happens at **send time**, not at the local delivery event:
the arrival timestamp is fixed the moment the message leaves the source,
which is what makes the conservative clock sync of
:mod:`repro.shard.clocksync` safe — any message sent by an event at time
``t`` arrives at ``t + delay >= t + lookahead``, and no horizon beyond
that has been granted yet.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.timing import PAST_EPSILON

__all__ = ["MailRouter", "ShardBoundary", "ShardContext"]


def _record_handoff_span(origin, origin_shard: int, dest_shard: int,
                         message, arrival: float) -> None:
    """Origin-side shard-handoff span for traced cross-shard messages.

    Recorded at send time on the *origin* engine's tracer (span keys come
    from its deterministic counter, so the identity is backend-invariant);
    the span covers send -> arrival, exactly the window the message is in
    flight between shards.
    """
    obs = getattr(origin, "obs", None)
    if obs is None or not obs.active or message.trace is None:
        return
    trace_id, parent_id = message.trace
    if not obs.sampled(trace_id):
        return
    obs.record(
        trace_id, "shard-handoff", obs.next_key(f"s{origin_shard}"),
        start=origin.loop.now, end=arrival, parent_id=parent_id,
        kind="shard", source=message.source, destination=message.destination,
        attrs={"from_shard": origin_shard, "to_shard": dest_shard,
               "bytes": message.size_bytes()})


class ShardContext:
    """What a shard engine needs to know about its place in the cluster."""

    __slots__ = ("shard_id", "owned", "router")

    def __init__(self, shard_id: int, owned: frozenset, router: "MailRouter"):
        self.shard_id = shard_id
        #: the site names this shard hosts (creates Site objects + endpoints for)
        self.owned = owned
        self.router = router

    def __repr__(self) -> str:
        return f"ShardContext(shard={self.shard_id}, sites={len(self.owned)})"


class ShardBoundary:
    """The per-shard adapter a transport consults on every send."""

    __slots__ = ("_router", "shard_id")

    def __init__(self, router: "MailRouter", shard_id: int):
        self._router = router
        self.shard_id = shard_id

    def is_remote(self, site_name: str) -> bool:
        """True if *site_name* is owned by a different shard."""
        return self._router.placement.get(site_name, self.shard_id) != self.shard_id

    def dispatch(self, message, delay: float):
        """Hand *message* to its owning shard, arriving *delay* from now."""
        return self._router.dispatch(self.shard_id, message, delay)


class MailRouter:
    """Owns the placement map and performs cross-shard handoffs.

    One per sharded kernel; every shard's :class:`ShardBoundary` routes
    through it.  A handoff schedules ``dest.transport._deliver`` on the
    destination shard's loop at the same arrival timestamp the source
    transport computed, so the delivery-side checks (site down at arrival,
    partition formed in flight, batch unbatching) run unchanged on the
    owning shard.

    With ``inbox_handoffs=True`` (the thread backend) a handoff is instead
    appended to a per-owning-shard locked inbox and only scheduled when the
    owner drains its inbox at the next round start.  That keeps every
    ``EventLoop`` single-threaded: the loop heap is touched only by its own
    shard's burst and by the coordinator between rounds.  Deferring the
    schedule is safe because the arrival timestamp is at least the sending
    shard's lookahead past its clock, which is at least every horizon
    granted in the sending round — no shard can need the message before
    the round ends.
    """

    def __init__(self, placement: Dict[str, int], inbox_handoffs: bool = False):
        self.placement = dict(placement)
        self._engines: List = []
        self.inbox_handoffs = bool(inbox_handoffs)
        #: inbox entries are (arrival, origin shard, per-origin seq, message);
        #: the drain sorts on that triple so the delivery order is a pure
        #: function of the simulation, not of thread interleaving
        self._inboxes: List[List[Tuple[float, int, int, object]]] = []
        self._inbox_locks: List[threading.Lock] = []
        #: per-origin dispatch counters; each slot is only ever touched by
        #: its own shard's burst, so no lock is needed
        self._origin_seq: List[int] = []
        #: back-reference set by the facade so engines can invalidate the
        #: lookahead matrix when they grow the topology
        self.clock_sync = None

    def clock_sync_invalidate(self) -> None:
        """Mark the clock sync's lookahead matrix stale (topology grew)."""
        if self.clock_sync is not None:
            self.clock_sync.invalidate()

    def attach_engines(self, engines: Sequence) -> None:
        """Late-bind the shard engines (they need the router to construct)."""
        self._engines = list(engines)
        if self.inbox_handoffs:
            self._inboxes = [[] for _ in self._engines]
            self._inbox_locks = [threading.Lock() for _ in self._engines]
            self._origin_seq = [0] * len(self._engines)

    def owner_of(self, site_name: str) -> Optional[int]:
        """The owning shard id of *site_name*, or None if unplaced."""
        return self.placement.get(site_name)

    def assign(self, site_name: str, shard_id: int) -> None:
        """Place a late-joining site (see the facade's ``add_site``)."""
        self.placement[site_name] = shard_id

    def unassign(self, site_name: str) -> None:
        """Roll back a placement that failed to materialise."""
        self.placement.pop(site_name, None)

    def boundary_for(self, shard_id: int) -> ShardBoundary:
        """The boundary adapter shard *shard_id*'s transport consults."""
        return ShardBoundary(self, shard_id)

    def engine_for(self, site_name: str):
        """The engine kernel owning *site_name* (KeyError if unplaced)."""
        return self._engines[self.placement[site_name]]

    def dispatch(self, origin_shard: int, message, delay: float):
        """Schedule a cross-shard delivery on the destination's loop.

        The arrival is ``origin now + delay``.  If the destination shard's
        clock has already passed that point — only possible when the
        optimistic flow-window bonus widened the granted horizons past the
        pure latency bound — the arrival is clamped to the destination's
        "now" and counted (``shard_late_arrivals``); under the default
        configuration the sync is purely conservative and this never fires.
        """
        origin = self._engines[origin_shard]
        dest_shard = self.placement[message.destination]
        arrival = origin.loop.now + delay
        _record_handoff_span(origin, origin_shard, dest_shard, message, arrival)
        if self.inbox_handoffs:
            # Park it in the owner's inbox; lateness (only possible with an
            # optimistic flow bonus) is judged drain-side against the
            # owner's clock, where that clock is stable.
            origin.stats.record_shard_handoff(message.size_bytes())
            seq = self._origin_seq[origin_shard]
            self._origin_seq[origin_shard] = seq + 1
            entry = (arrival, origin_shard, seq, message)
            with self._inbox_locks[dest_shard]:
                self._inboxes[dest_shard].append(entry)
            return entry
        dest = self._engines[dest_shard]
        dest_now = dest.loop.now
        late = arrival < dest_now - PAST_EPSILON
        origin.stats.record_shard_handoff(message.size_bytes(), late=late)
        return dest.loop.schedule_at(
            max(arrival, dest_now),
            lambda: dest.transport._deliver(message),
            label=f"shard-handoff-{message.message_id}")

    def drain_inboxes(self) -> int:
        """Schedule every parked handoff on its owner's loop.

        Called by the coordinator at round start, before next-event times
        are read — the drained messages are part of the owner's future and
        must count toward its ``next_event_time``.  Returns the number of
        messages drained (coordination telemetry).
        """
        if not self.inbox_handoffs:
            return 0
        drained = 0
        for shard_id, lock in enumerate(self._inbox_locks):
            with lock:
                batch = self._inboxes[shard_id]
                if not batch:
                    continue
                self._inboxes[shard_id] = []
            dest = self._engines[shard_id]
            dest_now = dest.loop.now
            # The append order above depends on thread interleaving; the
            # (arrival, origin, seq) sort restores a deterministic total
            # order so same-timestamp deliveries tie-break identically on
            # every run and every backend.
            batch.sort(key=lambda entry: entry[:3])
            for arrival, _origin, _seq, message in batch:
                if arrival < dest_now - PAST_EPSILON:
                    dest.stats.record_shard_late_arrival()
                dest.loop.schedule_at(
                    max(arrival, dest_now),
                    lambda m=message, d=dest: d.transport._deliver(m),
                    label=f"shard-handoff-{message.message_id}")
            drained += len(batch)
        return drained

    def __repr__(self) -> str:
        shards = len(set(self.placement.values()))
        return f"MailRouter({len(self.placement)} sites over {shards} shards)"
