"""Conservative clock synchronisation between shards.

Null-message-style (bounded-lag) synchronisation in synchronous rounds:
each round the coordinator reads every shard's next-event time ``T_k`` and
grants each shard a **horizon** it may freely run to.  A shard never runs
past the earliest instant an event on another shard could affect it.

Lookahead between shards is derived from the topology: the minimum
shortest-path *latency* between any site of shard ``i`` and any site of
shard ``j`` (computed on the full graph, ignoring crashes and partitions —
failures only remove routes, so the healthy-network latency is a valid
lower bound on any future arrival).  Because a message can also be relayed
through an intermediate shard's event, the effective influence bound is
the shortest path over the shard-level lookahead matrix itself
(Floyd-Warshall), not just the direct entry:

    horizon(i) = min(  min_{k != i, T_k finite}  T_k + dist(k, i),
                       T_i + roundtrip(i)                          ) + bonus

The ``T_i + roundtrip(i)`` term bounds a shard against reflections of its
*own* messages within the round (send to ``j`` and back costs at least
``dist(i, j) + dist(j, i)``).  The ``bonus`` is the ``repro.flow`` window
floor (``KernelConfig.flow_window_min``): a batchable message parks in an
outbox for at least the minimum flow window before it can leave, so the
windows widen the horizon.  The bonus is optimistic for traffic that
bypasses the fabric (``AGENT_TRANSFER`` is never batched), which is why
the :class:`~repro.shard.router.MailRouter` clamps and counts late
arrivals; with the default ``flow_window_min = 0`` the sync is purely
conservative and the clamp never fires.

Progress: the shard with the globally minimal ``T`` always receives a
horizon strictly beyond it (every lookahead is at least ``min_lookahead``),
so every round executes at least one event.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.net.topology import Topology

__all__ = ["ClockSync"]

#: lookahead floor: even co-located shards get a sliver of parallel slack,
#: and it is what guarantees per-round progress
MIN_LOOKAHEAD = 1e-6


class ClockSync:
    """The lookahead matrix + horizon calculator of a sharded kernel."""

    def __init__(self, topology: Topology, placement: Mapping[str, int],
                 shards: int, flow_bonus: float = 0.0,
                 min_lookahead: float = MIN_LOOKAHEAD):
        self._topology = topology
        self._placement = placement  # shared with the MailRouter (live view)
        self._shards = shards
        self.flow_bonus = max(0.0, float(flow_bonus))
        self.min_lookahead = float(min_lookahead)
        self._dirty = True
        self._dist: List[List[float]] = []
        self._roundtrip: List[float] = []
        #: how many times the matrix has actually been recomputed; the
        #: dirty-flag contract is that N topology edits between rounds cost
        #: exactly one rebuild, and tests pin that via this counter
        self.rebuilds = 0

    # -- lookahead matrix -------------------------------------------------------

    def invalidate(self) -> None:
        """Mark the matrix stale (a site or link was added).

        Crashes and partitions never invalidate: they only *remove* routes,
        so the existing lookahead stays a valid lower bound.  New sites and
        links can create shorter paths, which must shrink the lookahead
        before the next horizon is granted.

        Any number of invalidations between rounds coalesce into a single
        :meth:`rebuild` at the next horizon grant.  Safe to call from shard
        worker threads mid-round (a single bool store); the rebuild itself
        only ever runs on the coordinator between rounds, which is what
        keeps horizon computation read-only while bursts execute.
        """
        self._dirty = True

    def rebuild(self) -> None:
        """Recompute the shard-level lookahead distances from the topology.

        Seeds the shard matrix with one scan over the topology's *edges*
        (the cheapest direct cross-shard link between each shard pair),
        then closes it with Floyd-Warshall over shards.  Dropping the
        intra-shard segments of a multi-hop path can only shorten it, so
        every entry remains a valid lower bound on any cross-shard arrival;
        for single-site shards it equals the old all-pairs-over-sites
        computation exactly.  Cost: O(E + S^3) instead of all-pairs
        shortest paths over the whole site graph — the difference between
        a per-edit blip and a multi-second stall on the 2k-site fabric.
        """
        placement = self._placement
        size = self._shards
        dist = [[math.inf] * size for _ in range(size)]
        for i in range(size):
            dist[i][i] = 0.0
        for a, b, spec in self._topology.links():
            i = placement.get(a)
            j = placement.get(b)
            if i is None or j is None or i == j:
                continue
            cost = max(self.min_lookahead, spec.latency)
            if cost < dist[i][j]:
                dist[i][j] = cost
                dist[j][i] = cost  # links are undirected

        # Relayed influence: i can reach j through an event on k, so the
        # effective bound is the all-pairs shortest path over the matrix.
        for k in range(size):
            row_k = dist[k]
            for i in range(size):
                via = dist[i][k]
                if via == math.inf:
                    continue
                row_i = dist[i]
                for j in range(size):
                    through = via + row_k[j]
                    if through < row_i[j]:
                        row_i[j] = through

        self._dist = dist
        self._roundtrip = [
            min((dist[i][j] + dist[j][i]
                 for j in range(size) if j != i), default=math.inf)
            for i in range(size)]
        self._dirty = False
        self.rebuilds += 1

    def lookahead(self, origin: int, target: int) -> float:
        """The influence bound from shard *origin* to shard *target*."""
        if self._dirty:
            self.rebuild()
        return self._dist[origin][target]

    # -- horizons ---------------------------------------------------------------

    def horizons(self, next_times: Mapping[int, Optional[float]]
                 ) -> Dict[int, Optional[float]]:
        """Grant each shard a safe run-to horizon for this round.

        *next_times* maps shard id to its next-event timestamp (None when
        the shard's queue is empty).  A returned horizon of None means
        "unconstrained" — no other shard can ever influence this one.
        """
        if self._dirty:
            self.rebuild()
        horizons: Dict[int, Optional[float]] = {}
        for i in range(self._shards):
            bound = math.inf
            for k, at in next_times.items():
                if k == i or at is None:
                    continue
                influence = at + self._dist[k][i]
                if influence < bound:
                    bound = influence
            own = next_times.get(i)
            if own is not None and self._roundtrip[i] < math.inf:
                reflection = own + self._roundtrip[i]
                if reflection < bound:
                    bound = reflection
            horizons[i] = None if bound == math.inf else bound + self.flow_bonus
        return horizons

    def __repr__(self) -> str:
        return (f"ClockSync(shards={self._shards}, "
                f"flow_bonus={self.flow_bonus}, dirty={self._dirty})")
