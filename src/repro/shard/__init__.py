"""Sharded multi-kernel simulation: conservative parallel discrete events.

The paper's TACOMA system ran agents across many independent Unix hosts;
this package lets the reproduction do the same with its simulation.  With
``KernelConfig(shards=N)`` the :class:`~repro.core.kernel.Kernel` becomes
a facade over a :class:`ShardSet`: sites are partitioned across N shard
engines (deterministic CRC-32 hash or an explicit placement map), each
with its own :class:`~repro.net.simclock.EventLoop`, transport and
ledgers, advanced in conservative synchronisation rounds
(:class:`ClockSync`) with cross-shard traffic handed over by the
:class:`MailRouter` through a shard-boundary transport adapter.

>>> from repro.core import Kernel, KernelConfig
>>> from repro.net import lan
>>> kernel = Kernel(lan([f"site{i}" for i in range(8)]),
...                 config=KernelConfig(shards=4))
>>> kernel.run()  # doctest: +SKIP

``KernelConfig(shard_backend=...)`` selects where each round's bursts
execute (:mod:`repro.shard.backend`): ``inproc`` (serial, the default),
``thread`` (a persistent pool, one worker per shard), or ``process``
(long-lived spawn workers, real multi-core parallelism).  All three are
property-tested to produce identical simulation results.

``shards=1`` (the default) never builds any of this: the kernel runs the
classic single event loop, behaviourally identical to every prior release.
"""

from repro.shard.backend import (BACKENDS, InprocBackend, ShardBackend,
                                 ThreadBackend, make_backend,
                                 process_backend_available)
from repro.shard.clocksync import MIN_LOOKAHEAD, ClockSync
from repro.shard.placement import default_shard_of, resolve_placement
from repro.shard.procworker import ProcessBackend, WorkerSpec
from repro.shard.router import MailRouter, ShardBoundary, ShardContext
from repro.shard.shardset import Shard, ShardSet

__all__ = [
    "BACKENDS", "InprocBackend", "ShardBackend", "ThreadBackend",
    "make_backend", "process_backend_available",
    "ClockSync", "MIN_LOOKAHEAD",
    "MailRouter", "ShardBoundary", "ShardContext",
    "ProcessBackend", "WorkerSpec",
    "Shard", "ShardSet",
    "default_shard_of", "resolve_placement",
]
