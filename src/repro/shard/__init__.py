"""Sharded multi-kernel simulation: conservative parallel discrete events.

The paper's TACOMA system ran agents across many independent Unix hosts;
this package lets the reproduction do the same with its simulation.  With
``KernelConfig(shards=N)`` the :class:`~repro.core.kernel.Kernel` becomes
a facade over a :class:`ShardSet`: sites are partitioned across N shard
engines (deterministic CRC-32 hash or an explicit placement map), each
with its own :class:`~repro.net.simclock.EventLoop`, transport and
ledgers, advanced in conservative synchronisation rounds
(:class:`ClockSync`) with cross-shard traffic handed over by the
:class:`MailRouter` through a shard-boundary transport adapter.

>>> from repro.core import Kernel, KernelConfig
>>> from repro.net import lan
>>> kernel = Kernel(lan([f"site{i}" for i in range(8)]),
...                 config=KernelConfig(shards=4))
>>> kernel.run()  # doctest: +SKIP

``shards=1`` (the default) never builds any of this: the kernel runs the
classic single event loop, behaviourally identical to every prior release.
"""

from repro.shard.clocksync import MIN_LOOKAHEAD, ClockSync
from repro.shard.placement import default_shard_of, resolve_placement
from repro.shard.router import MailRouter, ShardBoundary, ShardContext
from repro.shard.shardset import Shard, ShardSet

__all__ = [
    "ClockSync", "MIN_LOOKAHEAD",
    "MailRouter", "ShardBoundary", "ShardContext",
    "Shard", "ShardSet",
    "default_shard_of", "resolve_placement",
]
