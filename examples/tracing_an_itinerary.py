#!/usr/bin/env python
"""Reading a trace: reconstruct an itinerary from one JSONL span dump.

PR 9's observability layer (`repro.obs`) gives every launched agent a
trace id that rides inside its briefcase, so the spans it leaves behind —
launch, per-site runs, FT hops, checkpoint barriers, migrations, rear-
guard releases — stay causally linked across sites, shards, and even
process boundaries.  This example runs a rear-guard-protected itinerary
on a two-shard kernel with tracing on, dumps the spans to a JSONL file,
and replays the journey with the `repro.obs.report` analyzer:

* the indented **hop timeline** shows where the computation spent its
  simulated time, hop by hop;
* the **per-subsystem breakdown** aggregates span durations into
  p50/p99 latencies (agent work vs network legs vs shard handoffs);
* infrastructure spans (WAL group commits) land in `~`-prefixed
  pseudo-traces, kept out of agent timelines but queryable all the same.

The same file can be inspected from a shell::

    python -m repro.obs.report trace.jsonl

Run with::

    python examples/tracing_an_itinerary.py
"""

from __future__ import annotations

import os
import tempfile

from repro.core import Kernel, KernelConfig
from repro.fault import launch_ft_computation
from repro.net import lan
from repro.obs.report import (breakdown, format_timeline, hop_timeline,
                              load_trace, trace_ids)


def main() -> None:
    sites = [f"node{i}" for i in range(6)]
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.jsonl")
        kernel = Kernel(lan(sites), config=KernelConfig(
            rng_seed=7,
            shards=2,                      # trace context crosses shards
            durability="wal-group-commit",  # WAL commits become infra spans
            obs_enabled=True,
            obs_path=trace_path))
        ft_id = launch_ft_computation(
            kernel, sites[0], sites[1:], ft_id="ft-demo", per_hop=0.25,
            durable_checkpoints=True)
        kernel.run(until=60.0)
        kernel.close()                     # flushes the JSONL dump

        spans = load_trace(trace_path)
        print(f"dumped {len(spans)} spans for trace ids {trace_ids(spans)}")

        rows = hop_timeline(spans, ft_id)
        print(f"\nhop timeline of {ft_id!r} "
              f"({len(rows)} spans, indent = causality):")
        print(format_timeline(rows))

        print("\nper-subsystem latency breakdown (sim seconds):")
        for subsystem, stats in sorted(breakdown(spans, by="subsystem").items()):
            print(f"  {subsystem:>6}: n={stats['count']:<3} "
                  f"p50={stats['p50']:.4f} p99={stats['p99']:.4f}")

        infra = [span for span in spans if span["trace_id"].startswith("~")]
        commits = [span for span in infra if span["name"] == "wal-commit"]
        print(f"\ninfra pseudo-traces: {len(infra)} spans "
              f"({len(commits)} WAL group commits)")


if __name__ == "__main__":
    main()
