#!/usr/bin/env python
"""Containing a runaway agent with electronic cash (paper section 3).

"We also hoped that electronic cash would provide a mechanism for
controlling run-away agents.  Specifically, charging for services would
limit possible damage by a run-away agent."

The example installs a metered ``rexec`` that charges 1 ECU per migration,
then releases a buggy agent that tries to hop around the network forever.
Its damage radius is exactly its funding: once the wallet is empty, no site
will ship it any further.  A well-behaved, adequately funded agent on the
same network is unaffected.

Run with::

    python examples/runaway_containment.py
"""

from __future__ import annotations

from repro.cash import Mint
from repro.cash.metering import fund_briefcase, install_metering, toll_revenue
from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.net import lan


def runaway(ctx, briefcase):
    """A buggy agent: it just keeps hopping to the next site, forever."""
    sites = ctx.sites()
    next_site = sites[(sites.index(ctx.site_name) + 1) % len(sites)]
    briefcase.set("HOPS", briefcase.get("HOPS", 0) + 1)
    result = yield ctx.jump(briefcase, next_site)
    if not result.value:
        ctx.cabinet("containment").put(
            "stopped", {"hops": briefcase.get("HOPS"), "site": ctx.site_name})
        return "out of cash"
    return "still hopping"


def honest_worker(ctx, briefcase):
    """A normal agent: visits its three sites and comes home."""
    itinerary = briefcase.folder("ITINERARY", create=True)
    briefcase.put("VISITED", ctx.site_name)
    if itinerary:
        yield ctx.jump(briefcase, itinerary.dequeue())
        return "moved"
    ctx.cabinet("containment").put("worker_done", list(briefcase.folder("VISITED")))
    return "done"


def main() -> None:
    register_behaviour("runaway", runaway, replace=True)
    register_behaviour("honest_worker", honest_worker, replace=True)

    sites = [f"host{i}" for i in range(5)]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=8))
    mint = Mint(seed=8)
    install_metering(kernel, mint, toll=1)

    # The runaway gets a 6-ECU allowance.
    runaway_briefcase = Briefcase()
    fund_briefcase(mint, runaway_briefcase, 6)
    kernel.launch("host0", "runaway", runaway_briefcase)

    # The honest worker gets exactly what its 4-hop round trip costs.
    worker_briefcase = Briefcase()
    fund_briefcase(mint, worker_briefcase, 4)
    worker_briefcase.folder("ITINERARY", create=True).extend(
        ["host1", "host2", "host3", "host0"])
    kernel.launch("host0", "honest_worker", worker_briefcase)

    kernel.run(max_events=500_000)

    stopped = next((kernel.site(site).cabinet("containment").get("stopped")
                    for site in sites
                    if kernel.site(site).cabinet("containment").get("stopped")), None)
    worker_trail = next((kernel.site(site).cabinet("containment").get("worker_done")
                         for site in sites
                         if kernel.site(site).cabinet("containment").get("worker_done")), None)

    print(f"runaway agent: stopped after {stopped['hops']} hops at {stopped['site']} "
          f"(funding: 6 ECUs, toll: 1 ECU per hop)")
    print(f"honest worker: completed its round trip {worker_trail}")
    print(f"total migrations in the system: {kernel.stats.migrations}")
    print(f"tolls collected across all sites: {toll_revenue(kernel)} ECUs")
    print(f"money supply unchanged: {mint.outstanding_value()} ECUs outstanding")


if __name__ == "__main__":
    main()
