#!/usr/bin/env python
"""Adaptive per-destination flush windows on a hot-pair + trickle topology.

The delivery fabric coalesces folder traffic per (source, destination)
pair, but a *single* global flush window cannot serve a mixed workload:
two sensor hubs blast readings at a collector nearly back to back (hot
pairs) while six field stations send an occasional report (trickle
pairs).  A tight window leaves the trickle folders unbatched — many wire
messages; a wide one sits on the hot pairs' full batches — high delivery
latency.

The flow-control layer (``repro.flow``) sizes each pair's window from its
observed arrival rate instead: hot pairs get tight windows (their batches
fill fast anyway), trickle pairs get wide ones.  The example sweeps the
fixed windows, runs the adaptive fabric, and prints the converged
per-pair windows — no fixed window matches the adaptive arm on both wire
messages and p50 latency.

Run with::

    python examples/adaptive_traffic.py
"""

from __future__ import annotations

from repro.bench.workloads import MixedTrafficParams, run_mixed_traffic

#: two hot senders, six trickle senders, all couriering to one hub
WORKLOAD = dict(n_hot=2, hot_deliveries=40, hot_gap=0.002, n_trickle=6,
                trickle_deliveries=8, trickle_gap=0.35, payload_bytes=200)
FIXED_WINDOWS = (0.0, 0.02, 0.05, 0.15, 0.6)
ADAPTIVE = dict(batch_window=0.02, flow_window_min=0.01, flow_window_max=0.6,
                flow_target_batch=6)


def main() -> None:
    print(f"{'fabric':<14} {'folders':>8} {'wire msgs':>10} {'batches':>8} "
          f"{'p50 latency':>12} {'mean latency':>13}")
    arms = {}
    for window in FIXED_WINDOWS:
        label = "off" if window == 0 else f"fixed {window:g}s"
        arms[label] = run_mixed_traffic(
            MixedTrafficParams(batch_window=window, **WORKLOAD))
    arms["adaptive"] = run_mixed_traffic(
        MixedTrafficParams(**ADAPTIVE, **WORKLOAD))
    for label, result in arms.items():
        print(f"{label:<14} {result.folders_received:>5}/{result.folders_expected}"
              f" {result.wire_messages:>10} {result.batches:>8} "
              f"{result.p50_latency:>11.4f}s {result.mean_latency:>12.4f}s")

    adaptive = arms["adaptive"]
    print("\nConverged per-pair windows (repro.flow telemetry):")
    for pair, info in sorted(adaptive.flow_windows.items()):
        print(f"  {pair:<14} window={info['window']:.3f}s "
              f"rate={info['message_rate']:7.1f} msg/s")
    print("\nHot pairs run tight windows (full batches, low latency); trickle")
    print("pairs run wide ones (their folders finally share a wire message).")
    print("Every fixed window loses to the adaptive fabric on wire messages")
    print("or on p50 delivery latency — usually the one you cared about.")


if __name__ == "__main__":
    main()
