#!/usr/bin/env python
"""Electronic commerce between agents: cash, double-spending, and audits.

Section 3 of the paper: agents pay for services with untraceable electronic
cash (ECUs); a trusted validation agent retires serial numbers so copies of
spent cash are worthless; disputes are settled by audits over signed action
records rather than by transactions.

The example runs three shoppers against a vendor:

* an honest shopper, who pays and receives the service;
* a double spender, who tries to pay with copies of already-spent ECUs and
  is foiled by the validation agent;
* a "claims to have paid" cheat, whom the auditor identifies from the
  signed records.

Run with::

    python examples/electronic_commerce.py
"""

from __future__ import annotations

from repro.cash import (Auditor, AuditRecord, KeyDirectory, Mint, Signer, Wallet,
                        identity_for, make_validation_behaviour, make_vendor_behaviour,
                        shopper_behaviour, VALIDATION_AGENT_NAME)
from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.net import lan


def launch_shopper(kernel, mint, directory, name, cheat=None):
    """Fund and launch one shopper travelling from 'home' to the 'market' site."""
    signer = directory.new_signer(name)
    briefcase = Briefcase()
    briefcase.set("HOME", "home")
    briefcase.set("VENDOR_SITE", "market")
    briefcase.set("VENDOR_NAME", "vendor")
    briefcase.set("PRICE", 10)
    briefcase.set("EXCHANGE_ID", f"exchange-{name}")
    briefcase.set("IDENTITY", identity_for(signer))
    if cheat:
        briefcase.set("CHEAT", cheat)

    wallet = Wallet(briefcase)
    if cheat == "double_spend":
        # The cheat's wallet holds copies of ECUs that were already spent
        # (validated and retired) elsewhere.
        spent = mint.issue_many([5, 5, 5])
        mint_takes = [mint.retire_and_reissue(ecu) for ecu in spent]  # retires them
        del mint_takes
        copies = briefcase.folder("SPENT_COPIES", create=True)
        for ecu in spent:
            copies.push(ecu.to_wire())
    else:
        wallet.deposit(mint.issue_many([5, 5, 5]))

    kernel.launch("home", shopper_behaviour, briefcase, name=name)
    return briefcase


def main() -> None:
    kernel = Kernel(lan(["home", "market", "bank"]), transport="tcp",
                    config=KernelConfig(rng_seed=9))
    mint = Mint(seed=7)
    directory = KeyDirectory()
    vendor_signer = directory.new_signer("vendor-corp")

    # The trusted validation agent is installed at the market (backed by the
    # mint), and the vendor sells a service for 10 ECUs.
    kernel.install_agent("market", VALIDATION_AGENT_NAME,
                         make_validation_behaviour(mint), replace=True)
    kernel.install_agent("market", "vendor",
                         make_vendor_behaviour(price=10, signer=vendor_signer),
                         replace=True)
    register_behaviour("shopper", shopper_behaviour, replace=True)

    launch_shopper(kernel, mint, directory, "alice")
    launch_shopper(kernel, mint, directory, "mallory", cheat="double_spend")
    launch_shopper(kernel, mint, directory, "carol", cheat="claim_paid")
    kernel.run()

    print("Shopper outcomes (recorded at their home site):")
    outcomes = kernel.site("home").cabinet("purchases").elements("outcomes")
    for outcome in outcomes:
        print(f"  {outcome['exchange_id']:<22} got_service={outcome['got_service']!s:<5} "
              f"cheat={outcome.get('cheat') or 'none'}")

    print(f"\nMint saw {mint.double_spend_attempts} double-spend attempt(s); "
          f"money outstanding: {mint.outstanding_value()} ECUs")

    # An aggrieved party requests an audit of carol's exchange.
    auditor = Auditor(directory)
    records = [AuditRecord.from_wire(record) for record in
               kernel.site("home").cabinet("purchases").elements("audit")]
    witness = kernel.site("market").cabinet("audit").elements("witness")
    finding = auditor.audit("exchange-carol", records, witness_records=witness,
                            expected_price=10)
    print("\nAudit of exchange-carol:")
    for violation in finding.violations:
        print("  violation:", violation)
    print("  guilty parties:", ", ".join(finding.guilty) or "none")


if __name__ == "__main__":
    main()
