#!/usr/bin/env python
"""Broker-based scheduling: mobile clients, load monitors, and policies.

Section 4 of the paper: brokers are well-known agents that match service
consumers with providers "based on load and capacity", fed by monitor
agents that report site status.  The example deploys one broker, three
compute providers of very different capacity, and a stream of mobile
clients, then compares how evenly each assignment policy spreads the work.

Run with::

    python examples/load_balancing.py
"""

from __future__ import annotations

from repro.bench import jains_fairness
from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan
from repro.scheduling import CLIENT_BEHAVIOUR_NAME, POLICY_NAMES, install_scheduling


def run_policy(policy: str, n_clients: int = 30):
    """Run one scheduling experiment under the given policy."""
    sites = ["home", "brokerage", "fast", "medium", "slow"]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=17))
    deployment = install_scheduling(
        kernel,
        broker_sites=["brokerage"],
        provider_specs=[
            {"site": "fast", "capacity": 4.0},
            {"site": "medium", "capacity": 2.0},
            {"site": "slow", "capacity": 1.0},
        ],
        policy=policy,
        monitor_interval=0.25,
        monitor_rounds=20,
        work_seconds=0.08,
    )
    kernel.run(until=0.5)    # let registrations and the first reports land

    for index in range(n_clients):
        briefcase = Briefcase()
        briefcase.set("HOME", "home")
        briefcase.set("BROKER_SITE", "brokerage")
        briefcase.set("SERVICE", "compute")
        briefcase.set("CLIENT", f"client-{index:02d}")
        kernel.launch("home", CLIENT_BEHAVIOUR_NAME, briefcase,
                      delay=0.5 + index * 0.05)
    kernel.run()

    jobs = deployment.provider_job_counts()
    outcomes = deployment.client_outcomes(["home"])
    served = [outcome for outcome in outcomes if outcome["status"] == "served"]
    turnaround = [outcome["completed_at"] for outcome in served]
    return jobs, len(served), jains_fairness(list(jobs.values())), max(turnaround or [0.0])


def main() -> None:
    print(f"{'policy':<20} {'fast':>5} {'medium':>7} {'slow':>5} "
          f"{'served':>7} {'fairness':>9} {'makespan':>9}")
    for policy in POLICY_NAMES:
        jobs, served, fairness, makespan = run_policy(policy)
        print(f"{policy:<20} {jobs.get('fast', 0):>5} {jobs.get('medium', 0):>7} "
              f"{jobs.get('slow', 0):>5} {served:>7} {fairness:>9.3f} {makespan:>8.2f}s")
    print("\nLoad-aware brokering sends most work to the fast site and finishes sooner;")
    print("load-oblivious policies overload the slow site and stretch the makespan.")


if __name__ == "__main__":
    main()
