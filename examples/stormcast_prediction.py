#!/usr/bin/env python
"""StormCast: storm prediction with a mobile filtering agent vs. client-server.

The paper's motivating application (section 6): weather sensors across the
Arctic produce large volumes of raw readings; an expert system at a hub
predicts severe storms.  A mobile agent filters at each sensor site and
carries only the storm precursors to the hub; the client-server baseline
ships every raw reading.  Both produce the same predictions — the
difference is what crosses the (slow) network.

Run with::

    python examples/stormcast_prediction.py
"""

from __future__ import annotations

from repro.apps.stormcast import StormCastParams, run_agent_pipeline, run_client_server
from repro.bench import bytes_human


def main() -> None:
    params = StormCastParams(
        n_sensors=10,
        samples_per_site=300,
        storm_rate=0.03,
        raw_payload_bytes=1024,     # each raw reading carries ~1 KB of radar data
        seed=42,
    )

    print(f"StormCast over {params.n_sensors} sensor sites, "
          f"{params.samples_per_site} readings each "
          f"({bytes_human(params.n_sensors * params.samples_per_site * params.raw_payload_bytes)} "
          f"of raw data in the field)\n")

    agent = run_agent_pipeline(params)
    server = run_client_server(params)

    print(f"{'pipeline':<16} {'bytes on wire':>14} {'messages':>9} "
          f"{'time to forecast':>17} {'alerts':>7}")
    for result in (agent, server):
        print(f"{result.mode:<16} {bytes_human(result.bytes_on_wire):>14} "
              f"{result.messages:>9} {result.duration:>15.2f}s "
              f"{len(result.alert_stations()):>7}")

    savings = server.bytes_on_wire / max(1, agent.bytes_on_wire)
    print(f"\nThe mobile agent moved {savings:.1f}x fewer bytes.")
    print(f"Both pipelines issue alerts for the same stations: "
          f"{agent.alert_stations() == server.alert_stations()}")
    if agent.alert_stations():
        print("Stations under storm warning:", ", ".join(agent.alert_stations()))


if __name__ == "__main__":
    main()
