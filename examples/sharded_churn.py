#!/usr/bin/env python
"""Sharded multi-kernel simulation: one kernel, four shard engines.

TACOMA ran across many independent Unix hosts; ``KernelConfig(shards=N)``
gives the simulation the same structure.  Sites partition across N shard
engines (deterministic CRC-32 hash, or the explicit ``shard_placement``
map used here), each with its own event loop and transport.  A
conservative clock sync — lookahead derived from the topology's link
latencies — advances every shard only as far as its neighbours cannot
affect, and the mail router hands cross-shard folders over at send time.
``KernelConfig(shard_backend=...)`` chooses how the per-round shard
bursts execute: serially (``"inproc"``), on a thread pool
(``"thread"``, used below), or on spawned worker processes
(``"process"``).

The example runs a churn of courier agents whose report destinations sit
on *other* shards, then shows the two properties that matter:

* **equivalence** — the same workload under ``shards=1`` produces exactly
  the same counters (sharding changes where events run, never what
  happens), and
* **telemetry** — per-shard busy time, sync rounds, and cross-shard
  handoff counts from ``kernel.shard_set`` and ``kernel.stats``.

Run with::

    python examples/sharded_churn.py
"""

from __future__ import annotations

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.context import AgentContext
from repro.core.folder import Folder
from repro.net import lan

#: 16 sites over 4 shards: four "racks", one shard each
SITES = [f"rack{rack}-host{host}" for rack in range(4) for host in range(4)]
PLACEMENT = {name: int(name[4]) for name in SITES}
N_COURIERS = 60
SHARDS = 4


def report_sink(ctx: AgentContext, briefcase: Briefcase):
    """Destination-side contact: file the couriered report."""
    payload_name = briefcase.get("PAYLOAD_NAME")
    reports = (briefcase.folder(payload_name).elements()
               if payload_name and briefcase.has(payload_name) else [])
    ctx.cabinet("mail").put("received", {
        "from": briefcase.get("SENDER_SITE"), "reports": len(reports)})
    yield ctx.sleep(0)
    return len(reports)


def courier(ctx: AgentContext, briefcase: Briefcase):
    """Work locally, then courier a report to a host on another rack."""
    yield ctx.sleep(float(briefcase.get("WORK")))
    folder = Folder("REPORT", [{"from": ctx.site_name}])
    yield ctx.send_folder(folder, briefcase.get("PEER"), "report_sink")
    return ctx.site_name


def build_and_run(shards: int, backend: str = "inproc") -> Kernel:
    config = KernelConfig(rng_seed=11, shards=shards,
                          shard_placement=PLACEMENT if shards > 1 else None,
                          shard_backend=backend)
    kernel = Kernel(lan(SITES), transport="tcp", config=config)
    kernel.install_agent(None, "report_sink", report_sink)
    for index in range(N_COURIERS):
        home = SITES[index % len(SITES)]
        peer = SITES[(index + 5) % len(SITES)]  # 5 hosts on: another rack
        briefcase = Briefcase()
        briefcase.set("WORK", 0.01 * (1 + index % 3))
        briefcase.set("PEER", peer)
        kernel.launch(home, courier, briefcase)
    kernel.run()
    return kernel


def main() -> None:
    # shard_backend picks how the per-round shard bursts execute:
    # "inproc" (serial, bit-identical reference), "thread" (persistent
    # pool + locked handoff inboxes), or "process" (spawned workers).
    # The kernel is a context manager; exiting the block tears down the
    # shard engines (worker threads/processes) via Kernel.close().
    with build_and_run(shards=SHARDS, backend="thread") as sharded:
        print(f"{len(SITES)} sites on {SHARDS} shards (thread backend), "
              f"{N_COURIERS} couriers, "
              f"every report crossing a rack (= shard) boundary\n")

        print("Per-shard telemetry (kernel.shard_set):")
        for shard in sharded.shard_set.shards:
            print(f"  shard {shard.shard_id}: {shard.sites} sites, "
                  f"{shard.events_processed} events, "
                  f"t={shard.engine.loop.now:.4f}s")
        snapshot = sharded.stats.snapshot()
        print(f"  sync rounds: {sharded.shard_set.rounds}, "
              f"cross-shard handoffs: {snapshot['shard_handoffs']} "
              f"({snapshot['shard_handoff_bytes']} bytes), "
              f"late arrivals: {snapshot['shard_late_arrivals']} "
              "(always 0: the sync is conservative)")
        summary = sharded.shard_summary()
        print(f"  shard_summary: backend={summary['backend']}, "
              f"rounds={summary['rounds']}, "
              f"handoffs_drained={summary['handoffs_drained']}\n")
        sharded_counters = sharded.counters()

    with build_and_run(shards=1) as classic:
        print(f"{'counter':<14} {'shards=4':>9} {'shards=1':>9}")
        for key, value in sorted(sharded_counters.items()):
            print(f"{key:<14} {value:>9} {classic.counters()[key]:>9}")
        match = sharded_counters == classic.counters()
    print(f"\ncounters identical under sharding: {match}")
    assert match, "sharding must not change simulation semantics"


if __name__ == "__main__":
    main()
