#!/usr/bin/env python
"""Rear guards: an itinerant computation that survives site crashes.

Section 5 of the paper: when an agent moves between sites it leaves a rear
guard behind; the guard relaunches the computation if a failure makes the
agent vanish, and retires itself once the computation has safely moved on.

The example runs the same data-collection itinerary twice under the same
mid-run site crash — once protected by rear guards, once unprotected — and
shows that only the protected computation completes (exactly once).

Run with::

    python examples/fault_tolerant_itinerary.py
"""

from __future__ import annotations

from repro.core import Kernel, KernelConfig
from repro.fault import (completions, launch_ft_computation, launch_plain_computation,
                         pending_guards)
from repro.net import FailureSchedule, ring


def build_kernel() -> Kernel:
    sites = [f"node{i}" for i in range(7)]
    kernel = Kernel(ring(sites), transport="tcp", config=KernelConfig(rng_seed=23))
    # Give every site a data value for the visitor to collect.
    for index, site in enumerate(sites):
        kernel.site(site).cabinet("data").put("VALUE", f"sample-{index}")
    return kernel


def main() -> None:
    itinerary = ["node1", "node2", "node3", "node4", "node5", "node6"]
    # node3 goes down before the computation reaches it and stays down for a
    # long time, so the rear guard has to relaunch the agent around it.
    crash = FailureSchedule().crash("node3", at=0.05).recover("node3", at=30.0)

    # Protected run.
    kernel = build_kernel()
    crash_copy = FailureSchedule(actions=list(crash.actions))
    crash_copy.install(kernel)
    ft_id = launch_ft_computation(kernel, "node0", itinerary, per_hop=0.3)
    kernel.run(until=60.0)
    protected = completions(kernel, "node6", ft_id)

    print("With rear guards:")
    if protected:
        record = protected[0]
        print(f"  completed exactly once: {len(protected) == 1}")
        print(f"  sites visited: {[entry['site'] for entry in record['results']]}")
        print(f"  sites skipped (down when reached): {record['skipped']}")
        print(f"  relaunched by a rear guard: {record['relaunched']}")
    guard_outcomes = [guard["outcome"] for guard in pending_guards(kernel)]
    print(f"  guard outcomes: {sorted(guard_outcomes)}")

    # Unprotected run under the same failure.
    kernel2 = build_kernel()
    crash_copy2 = FailureSchedule(actions=list(crash.actions))
    crash_copy2.install(kernel2)
    plain_id = launch_plain_computation(kernel2, "node0", itinerary)
    kernel2.run(until=60.0)
    unprotected = completions(kernel2, "node6", plain_id)

    print("\nWithout rear guards:")
    print(f"  completions: {len(unprotected)} "
          f"(the crash of node3 silently killed the computation)"
          if not unprotected else f"  completions: {len(unprotected)}")


if __name__ == "__main__":
    main()
