#!/usr/bin/env python
"""The agent-based mail system: messages that carry themselves.

Section 6 of the paper: "an interactive mail system where messages are
implemented by agents."  A letter is an agent that travels to the
recipient's site, files itself in the mailbox cabinet there, retries while
the destination is down (store-and-forward), and can send a receipt back.
A broadcast rides the diffusion agent as the mailing-list transport.

Run with::

    python examples/agent_mail.py
"""

from __future__ import annotations

from repro.apps.mail import MailSystem
from repro.core import KernelConfig
from repro.net import FailureSchedule, two_clusters


def main() -> None:
    # Two LANs (Tromso and Cornell) joined by one slow transatlantic link —
    # the paper's own deployment.  MailSystem.build applies the mail
    # defaults (keep-results retention: letters are churn, outcomes live in
    # the mailbox cabinets).
    topology = two_clusters(["tromso", "narvik", "bergen"], ["cornell", "ithaca"])
    mail = MailSystem.build(topology=topology, config=KernelConfig(rng_seed=4))
    kernel = mail.kernel

    mail.send("dag", "tromso", "fred", "cornell",
              "TACOMA status", "The rexec agent now runs over Horus.", want_receipt=True)
    mail.send("robbert", "cornell", "dag", "tromso",
              "Re: TACOMA status", "Group communication is holding up well.")

    # ithaca is down when this letter is sent; the letter agent waits at its
    # stranded site and retries until the destination recovers.
    FailureSchedule().crash("ithaca", at=0.0).recover("ithaca", at=4.0).install(kernel)
    mail.send("fred", "cornell", "ken", "ithaca",
              "workshop", "HotOS slides attached.", retry_interval=0.75, delay=0.2)

    # A department-wide announcement delivered by the diffusion agent.
    mail.broadcast("dag", "tromso", "seminar", "Mobile agents seminar on Friday.",
                   delay=5.0)

    kernel.run(until=40.0)

    for user, site in [("fred", "cornell"), ("dag", "tromso"), ("ken", "ithaca")]:
        letters = mail.inbox(site, user)
        print(f"{user}@{site} has {len(letters)} letter(s):")
        for letter in letters:
            print(f"   from {letter['from_user']:<10} {letter['subject']!r}")
    reached = [site for site in kernel.site_names()
               if any(letter["subject"] == "seminar" for letter in mail.inbox(site, "all"))]
    print(f"\nbroadcast reached {len(reached)}/{len(kernel.site_names())} sites: {reached}")
    print(f"letters delivered in total: {mail.delivered_count()}")


if __name__ == "__main__":
    main()
