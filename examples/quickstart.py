#!/usr/bin/env python
"""Quickstart: launch a mobile agent that visits every site and reports back.

This is the smallest complete TACOMA program: build a kernel over a
simulated network, write an agent behaviour as a generator, let it hop
between sites by meeting ``rexec`` (via the ``ctx.jump`` convenience), and
read the result out of a site-local file cabinet afterwards.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.net import lan


def greeter(ctx, briefcase):
    """Visit every site on the itinerary, collecting one greeting per site."""
    greetings = briefcase.folder("GREETINGS", create=True)
    greetings.push(f"hello from {ctx.site_name} at t={ctx.now:.3f}s")

    itinerary = briefcase.folder("ITINERARY", create=True)
    if itinerary:
        next_site = itinerary.dequeue()
        # Meeting rexec (wrapped by ctx.jump) ships this agent's code and
        # briefcase to the next site; a fresh copy continues there.
        yield ctx.jump(briefcase, next_site)
        return "moved on"

    # Last stop: leave the collected greetings in a site-local file cabinet
    # so the program that launched us can read them after the run.
    ctx.cabinet("results").put("GREETINGS", list(greetings.elements()))
    return "done"


def main() -> None:
    # A behaviour must be registered under a name to be shippable by name.
    register_behaviour("greeter", greeter, replace=True)

    sites = ["tromso", "oslo", "ithaca", "cornell"]
    # The kernel is a context manager: close() runs on exit (releasing
    # store/backend resources — a no-op here, but the habit scales to
    # sharded and realtime kernels where it matters).
    with Kernel(lan(sites), transport="tcp",
                config=KernelConfig(rng_seed=1)) as kernel:
        briefcase = Briefcase()
        itinerary = briefcase.folder("ITINERARY", create=True)
        for site in sites[1:]:
            itinerary.enqueue(site)

        kernel.launch("tromso", "greeter", briefcase)
        kernel.run()

        greetings = kernel.site(sites[-1]).cabinet("results").get("GREETINGS")
        print("The greeter agent visited:")
        for line in greetings:
            print("  ", line)
        print(f"\nmigrations: {kernel.stats.migrations}, "
              f"bytes on the wire: {kernel.stats.bytes_sent}, "
              f"simulated time: {kernel.now:.3f}s")


if __name__ == "__main__":
    main()
